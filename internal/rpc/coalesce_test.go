package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"o2pc/internal/proto"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
)

// callerFunc adapts a function to the Caller interface for tests.
type callerFunc func(ctx context.Context, from, to string, req any) (any, error)

func (f callerFunc) Call(ctx context.Context, from, to string, req any) (any, error) {
	return f(ctx, from, to, req)
}

// TestCoalescerBatchesPerPeer checks the core contract under a virtual
// clock: calls to the same peer inside one window ship as a single
// proto.Batch, calls to different peers ship separately, and every caller
// gets back exactly its own reply (index-matched through the BatchReply).
func TestCoalescerBatchesPerPeer(t *testing.T) {
	clock := sim.NewVirtualClock()
	var mu sync.Mutex
	batches := make(map[string][]int) // peer -> per-envelope sizes
	inner := callerFunc(func(ctx context.Context, from, to string, req any) (any, error) {
		b := req.(proto.Batch)
		mu.Lock()
		batches[to] = append(batches[to], len(b.Msgs))
		mu.Unlock()
		items := make([]proto.BatchItem, len(b.Msgs))
		for i, m := range b.Msgs {
			v := m.(proto.VoteRequest)
			items[i] = proto.BatchItem{Body: proto.VoteReply{Commit: true, Reason: v.TxnID + "@" + to}}
		}
		return proto.BatchReply{Items: items}, nil
	})
	co := NewCoalescer(inner, CoalesceConfig{Window: 100 * time.Microsecond, Clock: clock})

	const K = 8
	replies := make([]string, 2*K)
	grp := sim.NewGroup(clock)
	for i := 0; i < 2*K; i++ {
		i := i
		to := "s0"
		if i >= K {
			to = "s1"
		}
		grp.Go(func() {
			_ = clock.Sleep(context.Background(), time.Duration(i+1)*time.Microsecond)
			raw, err := co.Call(context.Background(), "c0", to, proto.VoteRequest{TxnID: fmt.Sprintf("T%d", i)})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			replies[i] = raw.(proto.VoteReply).Reason
		})
	}
	grp.Wait()

	// All 2K callers arrive within 16µs; each peer's 100µs window must
	// cover its K callers in one envelope.
	for _, peer := range []string{"s0", "s1"} {
		if len(batches[peer]) != 1 || batches[peer][0] != K {
			t.Fatalf("peer %s envelopes = %v, want one of %d", peer, batches[peer], K)
		}
	}
	for i, r := range replies {
		to := "s0"
		if i >= K {
			to = "s1"
		}
		if want := fmt.Sprintf("T%d@%s", i, to); r != want {
			t.Fatalf("reply %d = %q, want %q (cross-delivered?)", i, r, want)
		}
	}
	if got := co.Stats().Batches.Value(); got != 2 {
		t.Fatalf("batches counter = %d, want 2", got)
	}
}

// TestCoalescerDeterministic runs the same schedule twice under virtual
// clocks and requires identical envelopes, virtual elapsed time, and
// rpc.batch trace events — the property that keeps explorer same-seed
// golden traces byte-identical with coalescing enabled.
func TestCoalescerDeterministic(t *testing.T) {
	type outcome struct {
		sizes   []int
		elapsed time.Duration
		events  string
	}
	run := func() outcome {
		clock := sim.NewVirtualClock()
		tr := trace.New(clock, 0)
		var mu sync.Mutex
		var sizes []int
		inner := callerFunc(func(ctx context.Context, from, to string, req any) (any, error) {
			b := req.(proto.Batch)
			mu.Lock()
			sizes = append(sizes, len(b.Msgs))
			mu.Unlock()
			return proto.BatchReply{Items: make([]proto.BatchItem, len(b.Msgs))}, nil
		})
		co := NewCoalescer(inner, CoalesceConfig{Window: 50 * time.Microsecond, MaxBatch: 7, Clock: clock, Tracer: tr})
		grp := sim.NewGroup(clock)
		for i := 0; i < 20; i++ {
			i := i
			grp.Go(func() {
				_ = clock.Sleep(context.Background(), time.Duration(i%5)*10*time.Microsecond)
				if _, err := co.Call(context.Background(), "c0", "s0", proto.Decision{TxnID: fmt.Sprintf("T%d", i), Commit: true}); err != nil {
					t.Errorf("call: %v", err)
				}
			})
		}
		grp.Wait()
		var sb strings.Builder
		for _, e := range tr.Events() {
			fmt.Fprintf(&sb, "%d %s %s->%s %s\n", e.T, e.Type, e.Node, e.Peer, e.Detail)
		}
		return outcome{sizes: sizes, elapsed: clock.Elapsed(), events: sb.String()}
	}
	a, b := run(), run()
	if a.elapsed != b.elapsed || fmt.Sprint(a.sizes) != fmt.Sprint(b.sizes) || a.events != b.events {
		t.Fatalf("runs differ:\n%+v\nvs\n%+v", a, b)
	}
	// MaxBatch must cap envelopes.
	total := 0
	for _, s := range a.sizes {
		if s > 7 {
			t.Fatalf("envelope of %d exceeds MaxBatch 7 (sizes %v)", s, a.sizes)
		}
		total += s
	}
	if total != 20 {
		t.Fatalf("envelopes carried %d messages, want 20 (sizes %v)", total, a.sizes)
	}
	if !strings.Contains(a.events, "rpc.batch") {
		t.Fatalf("no rpc.batch trace events:\n%s", a.events)
	}
}

// TestCoalescerFIFOPerPeer is the ordering pin (run under -race -count=5
// in CI): many senders issue sequenced decisions to the same peers through
// one coalescer over the real clock, and the batch fan-out must deliver
// every sender's messages to each peer in send order — coalescing may
// conflate, it may never reorder.
func TestCoalescerFIFOPerPeer(t *testing.T) {
	type arrival struct{ from, txn string }
	var mu sync.Mutex
	delivered := make(map[string][]arrival) // peer -> arrivals in handler order
	inner := callerFunc(func(ctx context.Context, from, to string, req any) (any, error) {
		// One BatchHandler-wrapped handler per call, closing over the peer
		// name so one recorder can attribute arrivals across both peers.
		h := BatchHandler(func(ctx context.Context, f string, m any) (any, error) {
			d := m.(proto.Decision)
			mu.Lock()
			delivered[to] = append(delivered[to], arrival{from: f, txn: d.TxnID})
			mu.Unlock()
			return proto.Ack{TxnID: d.TxnID}, nil
		}, nil)
		return h(ctx, from, req)
	})
	co := NewCoalescer(inner, CoalesceConfig{Window: 50 * time.Microsecond, MaxBatch: 5})

	const senders, peers, seq = 6, 2, 40
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		for p := 0; p < peers; p++ {
			s, p := s, p
			wg.Add(1)
			go func() {
				defer wg.Done()
				from, to := fmt.Sprintf("c%d", s), fmt.Sprintf("s%d", p)
				for i := 0; i < seq; i++ {
					// Site carries the peer name so the shared handler can
					// attribute the arrival; TxnID carries the sequence.
					raw, err := co.Call(context.Background(), from, to,
						proto.Decision{TxnID: fmt.Sprintf("%s-%04d", from, i), Commit: true})
					if err != nil {
						t.Errorf("%s->%s seq %d: %v", from, to, i, err)
						return
					}
					if ack := raw.(proto.Ack); ack.TxnID != fmt.Sprintf("%s-%04d", from, i) {
						t.Errorf("%s->%s seq %d: ack for %q (cross-delivered reply)", from, to, i, ack.TxnID)
						return
					}
				}
			}()
		}
	}
	wg.Wait()

	for p := 0; p < peers; p++ {
		peer := fmt.Sprintf("s%d", p)
		last := make(map[string]string)
		n := 0
		for _, a := range delivered[peer] {
			if prev, ok := last[a.from]; ok && a.txn <= prev {
				t.Fatalf("peer %s: %s delivered %q after %q", peer, a.from, a.txn, prev)
			}
			last[a.from] = a.txn
			n++
		}
		if n != senders*seq {
			t.Fatalf("peer %s received %d messages, want %d", peer, n, senders*seq)
		}
	}
}

// TestCoalescerPassThroughAndErrors checks the edges: non-coalescable
// messages bypass batching entirely, a remote per-item error reaches
// exactly its own caller, and an envelope-level transport error fans out
// to every waiter in the batch.
func TestCoalescerPassThroughAndErrors(t *testing.T) {
	clock := sim.NewVirtualClock()
	var sawExec atomic.Bool
	boom := errors.New("link down")
	failEnvelopes := atomic.Bool{}
	inner := callerFunc(func(ctx context.Context, from, to string, req any) (any, error) {
		if _, ok := req.(proto.ExecRequest); ok {
			sawExec.Store(true)
			return proto.ExecReply{OK: true}, nil
		}
		if failEnvelopes.Load() {
			return nil, fmt.Errorf("%w: %s (%v)", ErrUnreachable, to, boom)
		}
		b := req.(proto.Batch)
		items := make([]proto.BatchItem, len(b.Msgs))
		for i, m := range b.Msgs {
			if m.(proto.VoteRequest).TxnID == "TBAD" {
				items[i] = proto.BatchItem{Err: "no such txn"}
				continue
			}
			items[i] = proto.BatchItem{Body: proto.VoteReply{Commit: true}}
		}
		return proto.BatchReply{Items: items}, nil
	})
	co := NewCoalescer(inner, CoalesceConfig{Window: 20 * time.Microsecond, Clock: clock})

	// Pass-through: an ExecRequest reaches inner directly, un-batched.
	if _, err := co.Call(context.Background(), "c0", "s0", proto.ExecRequest{TxnID: "T1"}); err != nil || !sawExec.Load() {
		t.Fatalf("exec pass-through: err=%v sawExec=%v", err, sawExec.Load())
	}

	// Per-item error: TBAD's caller fails, its batchmate succeeds.
	errs := make([]error, 2)
	grp := sim.NewGroup(clock)
	for i, id := range []string{"TGOOD", "TBAD"} {
		i, id := i, id
		grp.Go(func() {
			_, errs[i] = co.Call(context.Background(), "c0", "s0", proto.VoteRequest{TxnID: id})
		})
	}
	grp.Wait()
	if errs[0] != nil {
		t.Fatalf("TGOOD: %v", errs[0])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "no such txn") {
		t.Fatalf("TBAD err = %v, want the remote per-item error", errs[1])
	}

	// Envelope-level failure: every waiter in the batch sees the error.
	failEnvelopes.Store(true)
	grp = sim.NewGroup(clock)
	for i := range errs {
		i := i
		grp.Go(func() {
			_, errs[i] = co.Call(context.Background(), "c0", "s0", proto.VoteRequest{TxnID: fmt.Sprintf("T%d", i)})
		})
	}
	grp.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrUnreachable) {
			t.Fatalf("waiter %d: err = %v, want ErrUnreachable fan-out", i, err)
		}
	}
}

// TestBatchHandlerOverTCP closes the loop end to end: a Coalescer in front
// of a real TCPClient, a BatchHandler-wrapped server behind it, proto.Batch
// crossing the wire through the binary codec.
func TestBatchHandlerOverTCP(t *testing.T) {
	srv := NewServer("s0", BatchHandler(func(ctx context.Context, from string, m any) (any, error) {
		v := m.(proto.VoteRequest)
		return proto.VoteReply{Commit: true, Reason: v.TxnID}, nil
	}, nil))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	client := NewTCPClient(map[string]string{"s0": ln.Addr().String()})
	defer client.Close()
	co := NewCoalescer(client, CoalesceConfig{Window: 200 * time.Microsecond})

	const K = 12
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			raw, err := co.Call(ctx, "c0", "s0", proto.VoteRequest{TxnID: fmt.Sprintf("T%d", i)})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if r := raw.(proto.VoteReply); r.Reason != fmt.Sprintf("T%d", i) {
				t.Errorf("call %d got reply for %q", i, r.Reason)
			}
		}()
	}
	wg.Wait()
	if co.Stats().Batches.Value() >= K {
		t.Fatalf("batches = %d for %d calls: nothing coalesced", co.Stats().Batches.Value(), K)
	}
}
