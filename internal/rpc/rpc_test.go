package rpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

type ping struct{ N int }
type pong struct{ N int }

func echoHandler(ctx context.Context, from string, req any) (any, error) {
	p, ok := req.(ping)
	if !ok {
		return nil, fmt.Errorf("bad request %T", req)
	}
	return pong{N: p.N + 1}, nil
}

func TestNetworkCall(t *testing.T) {
	n := NewNetwork(Config{})
	n.Register("b", echoHandler)
	resp, err := n.Call(context.Background(), "a", "b", ping{N: 1})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if resp.(pong).N != 2 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestNetworkUnknownNode(t *testing.T) {
	n := NewNetwork(Config{})
	_, err := n.Call(context.Background(), "a", "ghost", ping{})
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkDownNode(t *testing.T) {
	n := NewNetwork(Config{})
	n.Register("b", echoHandler)
	n.SetDown("b", true)
	if _, err := n.Call(context.Background(), "a", "b", ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	n.SetDown("b", false)
	if _, err := n.Call(context.Background(), "a", "b", ping{}); err != nil {
		t.Fatalf("recovered node unreachable: %v", err)
	}
}

func TestNetworkPartition(t *testing.T) {
	n := NewNetwork(Config{})
	n.Register("a", echoHandler)
	n.Register("b", echoHandler)
	n.SetPartition("a", "b", true)
	if _, err := n.Call(context.Background(), "a", "b", ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned call: %v", err)
	}
	if _, err := n.Call(context.Background(), "b", "a", ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partition must be bidirectional")
	}
	// Other links unaffected.
	n.Register("c", echoHandler)
	if _, err := n.Call(context.Background(), "a", "c", ping{}); err != nil {
		t.Fatalf("unrelated link affected: %v", err)
	}
	n.SetPartition("a", "b", false)
	if _, err := n.Call(context.Background(), "a", "b", ping{}); err != nil {
		t.Fatalf("healed link unreachable: %v", err)
	}
}

func TestNetworkLatencyBounds(t *testing.T) {
	n := NewNetwork(Config{MinLatency: 2 * time.Millisecond, MaxLatency: 4 * time.Millisecond})
	n.Register("b", echoHandler)
	start := time.Now()
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := n.Call(context.Background(), "a", "b", ping{}); err != nil {
			t.Fatalf("call: %v", err)
		}
	}
	elapsed := time.Since(start)
	// Each call pays two one-way delays of at least MinLatency.
	if min := time.Duration(calls) * 2 * 2 * time.Millisecond; elapsed < min {
		t.Fatalf("elapsed %v < minimum %v", elapsed, min)
	}
}

func TestNetworkDrop(t *testing.T) {
	n := NewNetwork(Config{DropProb: 1.0})
	n.Register("b", echoHandler)
	if _, err := n.Call(context.Background(), "a", "b", ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dropped call: %v", err)
	}
}

func TestNetworkCountsRequestAndReply(t *testing.T) {
	n := NewNetwork(Config{})
	n.Register("b", echoHandler)
	for i := 0; i < 3; i++ {
		_, _ = n.Call(context.Background(), "a", "b", ping{})
	}
	counts := n.Counts()
	if got := counts.Counter("rpc.ping").Value(); got != 3 {
		t.Fatalf("ping count = %d", got)
	}
	if got := counts.Counter("rpc.pong").Value(); got != 3 {
		t.Fatalf("pong count = %d", got)
	}
}

func TestNetworkContextCancel(t *testing.T) {
	n := NewNetwork(Config{MinLatency: 50 * time.Millisecond, MaxLatency: 60 * time.Millisecond})
	n.Register("b", echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := n.Call(ctx, "a", "b", ping{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkConcurrentCalls(t *testing.T) {
	n := NewNetwork(Config{MaxLatency: time.Millisecond})
	n.Register("b", echoHandler)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := n.Call(context.Background(), "a", "b", ping{N: g})
			if err != nil || resp.(pong).N != g+1 {
				t.Errorf("call %d: %v %v", g, resp, err)
			}
		}(g)
	}
	wg.Wait()
}

func TestDeterministicDropPatternWithSeed(t *testing.T) {
	pattern := func() string {
		n := NewNetwork(Config{DropProb: 0.5, Seed: 7})
		n.Register("b", echoHandler)
		out := make([]byte, 0, 20)
		for i := 0; i < 20; i++ {
			if _, err := n.Call(context.Background(), "a", "b", ping{}); err != nil {
				out = append(out, 'x')
			} else {
				out = append(out, '.')
			}
		}
		return string(out)
	}
	a, b := pattern(), pattern()
	if a != b {
		t.Fatalf("seeded drop patterns diverged: %q vs %q", a, b)
	}
	if a == "...................." || a == "xxxxxxxxxxxxxxxxxxxx" {
		t.Fatalf("drop probability not applied: %q", a)
	}
}

type tcpReq struct{ Msg string }
type tcpResp struct{ Msg string }

func init() {
	gob.Register(tcpReq{})
	gob.Register(tcpResp{})
}

func TestTCPRoundTrip(t *testing.T) {
	type req = tcpReq
	type resp = tcpResp

	srv := NewServer("b", func(ctx context.Context, from string, m any) (any, error) {
		r := m.(req)
		return resp{Msg: r.Msg + " from " + from}, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	client := NewTCPClient(map[string]string{"b": ln.Addr().String()})
	defer client.Close()
	raw, err := client.Call(context.Background(), "a", "b", req{Msg: "hi"})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if raw.(resp).Msg != "hi from a" {
		t.Fatalf("resp = %+v", raw)
	}
	// Sequential reuse of the pooled connection.
	if _, err := client.Call(context.Background(), "a", "b", req{Msg: "again"}); err != nil {
		t.Fatalf("second call: %v", err)
	}
}

func TestTCPRemoteError(t *testing.T) {
	type req = tcpReq
	srv := NewServer("b", func(ctx context.Context, from string, m any) (any, error) {
		return nil, errors.New("handler exploded")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	client := NewTCPClient(map[string]string{"b": ln.Addr().String()})
	defer client.Close()
	_, err = client.Call(context.Background(), "a", "b", req{})
	if err == nil || !errorsContain(err, "handler exploded") {
		t.Fatalf("err = %v", err)
	}
}

// TestTCPConcurrentCallsNotSerialized pins the per-call connection
// property: a call whose handler is blocked must not stall other calls to
// the same peer. With a single shared connection, a subtransaction stuck
// in a lock wait at a site would block the lock holder's own vote traffic
// and turn every lock conflict into a timeout convoy.
func TestTCPConcurrentCallsNotSerialized(t *testing.T) {
	type req = tcpReq
	release := make(chan struct{})
	srv := NewServer("b", func(ctx context.Context, from string, m any) (any, error) {
		if m.(req).Msg == "slow" {
			<-release
		}
		return tcpResp{Msg: "ok"}, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	client := NewTCPClient(map[string]string{"b": ln.Addr().String()})
	defer client.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := client.Call(context.Background(), "a", "b", req{Msg: "slow"})
		slowDone <- err
	}()

	// The fast call must complete while the slow handler is still parked.
	fastCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Call(fastCtx, "a", "b", req{Msg: "fast"}); err != nil {
		t.Fatalf("fast call blocked behind slow one: %v", err)
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestTCPPoolReuse checks that finished calls park their connections for
// reuse instead of dialling per call.
func TestTCPPoolReuse(t *testing.T) {
	type req = tcpReq
	srv := NewServer("b", func(ctx context.Context, from string, m any) (any, error) {
		return tcpResp{Msg: "ok"}, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	client := NewTCPClient(map[string]string{"b": ln.Addr().String()})
	defer client.Close()
	for i := 0; i < 5; i++ {
		if _, err := client.Call(context.Background(), "a", "b", req{Msg: "x"}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	client.mu.Lock()
	idle, open := len(client.idle["b"]), len(client.open)
	client.mu.Unlock()
	if idle != 1 || open != 1 {
		t.Fatalf("after sequential calls: %d idle, %d open conns, want 1 and 1", idle, open)
	}
}

func TestTCPUnknownNode(t *testing.T) {
	client := NewTCPClient(map[string]string{})
	if _, err := client.Call(context.Background(), "a", "nope", ping{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	client := NewTCPClient(map[string]string{"b": "127.0.0.1:1"}) // nothing listens
	if _, err := client.Call(context.Background(), "a", "b", ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func errorsContain(err error, sub string) bool {
	return err != nil && len(err.Error()) >= len(sub) &&
		(func() bool {
			s := err.Error()
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})()
}
