package rpc

// The TCP transport's frame layer (DESIGN.md §15). Every message on a
// connection — request, reply, or decode-error notice — travels as one
// frame:
//
//	offset  size  field
//	0       2     magic 0x4F32 ("O2", big endian)
//	2       1     wire version (proto.WireVersion)
//	3       1     frame kind (request / reply / decode-error)
//	4       4     payload length (big endian)
//	8       n     payload
//
// The version byte is the negotiation: both sides stamp it on every frame
// and check it on every read, so a peer running an older or newer codec is
// refused loudly — the reader answers with a decode-error frame naming the
// mismatch (ErrWireVersion on the caller's side) instead of silently
// misparsing the stream. The same decode-error frame answers torn or
// corrupt payloads (ErrDecode), after which the connection is closed: a
// stream that lost framing cannot be resynchronized.
//
// Request payloads carry the sender name then the body; reply payloads an
// error string then the body. Bodies use the hand-rolled binary codec for
// the protocol vocabulary (proto.AppendMessage) and fall back to a
// self-contained gob blob for anything else, so auxiliary message types
// (tests, future tooling) still cross the wire.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"o2pc/internal/proto"
)

const (
	frameMagic   = 0x4F32
	frameHdrSize = 8
	// maxFramePayload bounds a frame so a corrupt length prefix cannot
	// drive an arbitrary allocation.
	maxFramePayload = 64 << 20
)

// Frame kinds.
const (
	frameRequest byte = iota + 1
	frameReply
	frameDecodeErr
)

// Body kinds inside request/reply payloads.
const (
	bodyNil byte = iota
	bodyProto
	bodyGob
)

// Typed transport decode errors. Both are surfaced by TCPClient.Call (and
// sent back by Server as decode-error frames) so a peer mismatch is
// diagnosable instead of a silently dropped connection.
var (
	// ErrWireVersion reports a frame whose magic or version byte does not
	// match this codec generation — the other side of the negotiation.
	ErrWireVersion = errors.New("rpc: wire version mismatch")
	// ErrDecode reports a structurally invalid frame or payload (torn
	// write, corrupt length, undecodable body).
	ErrDecode = errors.New("rpc: frame decode error")
)

// appendFrameHeader stamps an 8-byte header for a payload of length n.
func appendFrameHeader(buf []byte, kind byte, n int) []byte {
	buf = binary.BigEndian.AppendUint16(buf, frameMagic)
	buf = append(buf, proto.WireVersion, kind)
	return binary.BigEndian.AppendUint32(buf, uint32(n))
}

// readFrame reads one frame, reusing buf when it is large enough. A magic
// or version mismatch returns ErrWireVersion; a malformed length returns
// ErrDecode; io errors (including a conn closed mid-frame) pass through.
func readFrame(r io.Reader, buf []byte) (kind byte, payload []byte, err error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if m := binary.BigEndian.Uint16(hdr[:2]); m != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %#04x (peer not speaking the o2pc binary protocol?)", ErrWireVersion, m)
	}
	if v := hdr[2]; v != proto.WireVersion {
		return 0, nil, fmt.Errorf("%w: have %d, peer sent %d", ErrWireVersion, proto.WireVersion, v)
	}
	kind = hdr[3]
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrDecode, n)
	}
	if int(n) <= cap(buf) {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		// A conn killed mid-payload surfaces as a torn frame.
		return 0, nil, fmt.Errorf("%w: torn frame (%v)", ErrDecode, err)
	}
	return kind, payload, nil
}

// appendBody encodes a message body: the binary codec for protocol
// messages, a self-contained gob blob otherwise.
func appendBody(buf []byte, body any) ([]byte, error) {
	if body == nil {
		return append(buf, bodyNil), nil
	}
	out, err := proto.AppendMessage(append(buf, bodyProto), body)
	if err == nil {
		return out, nil
	}
	if !errors.Is(err, proto.ErrUnknownWireType) {
		return nil, err
	}
	var gb bytes.Buffer
	if err := gob.NewEncoder(&gb).Encode(&body); err != nil {
		return nil, fmt.Errorf("rpc: gob-encoding %T: %w", body, err)
	}
	return append(append(buf, bodyGob), gb.Bytes()...), nil
}

// decodeBody is appendBody's inverse; data is the body-kind byte onward.
func decodeBody(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty body", ErrDecode)
	}
	switch data[0] {
	case bodyNil:
		if len(data) != 1 {
			return nil, fmt.Errorf("%w: trailing bytes after nil body", ErrDecode)
		}
		return nil, nil
	case bodyProto:
		msg, err := proto.DecodeMessage(data[1:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		return msg, nil
	case bodyGob:
		var body any
		if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&body); err != nil {
			return nil, fmt.Errorf("%w: gob: %v", ErrDecode, err)
		}
		return body, nil
	default:
		return nil, fmt.Errorf("%w: unknown body kind %d", ErrDecode, data[0])
	}
}

// appendRequestFrame builds a complete request frame (header + payload).
func appendRequestFrame(buf []byte, from string, body any) ([]byte, error) {
	payload := binary.AppendUvarint(nil, uint64(len(from)))
	payload = append(payload, from...)
	payload, err := appendBody(payload, body)
	if err != nil {
		return nil, err
	}
	buf = appendFrameHeader(buf, frameRequest, len(payload))
	return append(buf, payload...), nil
}

// decodeRequestPayload splits a request payload into sender and body.
func decodeRequestPayload(data []byte) (from string, body any, err error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > uint64(len(data)-sz) {
		return "", nil, fmt.Errorf("%w: bad sender length", ErrDecode)
	}
	from = string(data[sz : sz+int(n)])
	body, err = decodeBody(data[sz+int(n):])
	return from, body, err
}

// appendReplyFrame builds a complete reply frame (header + payload).
func appendReplyFrame(buf []byte, errText string, body any) ([]byte, error) {
	payload := binary.AppendUvarint(nil, uint64(len(errText)))
	payload = append(payload, errText...)
	payload, err := appendBody(payload, body)
	if err != nil {
		return nil, err
	}
	buf = appendFrameHeader(buf, frameReply, len(payload))
	return append(buf, payload...), nil
}

// decodeReplyPayload splits a reply payload into error text and body.
func decodeReplyPayload(data []byte) (errText string, body any, err error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > uint64(len(data)-sz) {
		return "", nil, fmt.Errorf("%w: bad error length", ErrDecode)
	}
	errText = string(data[sz : sz+int(n)])
	body, err = decodeBody(data[sz+int(n):])
	return errText, body, err
}

// appendDecodeErrFrame builds the typed decode-error frame a server sends
// before closing a connection it can no longer parse.
func appendDecodeErrFrame(buf []byte, msg string) []byte {
	buf = appendFrameHeader(buf, frameDecodeErr, len(msg))
	return append(buf, msg...)
}
