package core

import (
	"context"
	"testing"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/proto"
	"o2pc/internal/storage"
)

// FuzzSessionScript drives a multi-shot session through an arbitrary
// byte-scripted round sequence — reads, balanced transfers, mid-session
// client aborts, doomed votes — and checks the standing oracles after every
// execution: money conservation, the Section 5 criterion, Theorem 2, and
// (implicitly) no panics anywhere in the session path.
//
// Every write round is a balanced transfer (debit one site, credit the
// other, same account), so total money is invariant under any mix of
// commits, aborts, and compensations.
func FuzzSessionScript(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x42, 0x07})
	f.Add([]byte{0x03, 0x03, 0x03, 0x03, 0x04})
	f.Add([]byte{0x02, 0x00, 0x01, 0x02, 0x05, 0x06})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 16 {
			script = script[:16]
		}
		const accounts = 3
		const initial = int64(1000)
		cl := NewCluster(Config{Sites: 2, Record: true})
		for a := 0; a < accounts; a++ {
			cl.SeedInt64(acctKey(a), initial)
		}
		ctx := context.Background()

		sess, err := cl.OpenSession(coord.SessionSpec{
			ID: "F1", Protocol: proto.O2PC, Marking: proto.MarkP1,
		})
		if err != nil {
			t.Fatalf("open session: %v", err)
		}
		doomed := false
		aborted := false
		for i := 0; i < len(script); i++ {
			b := script[i]
			switch b % 5 {
			case 0: // read round at a scripted site
				_, _ = sess.Round(ctx, []coord.SubtxnSpec{{
					Site: cl.Site(int(b/5) % 2).Name(),
					Ops:  []proto.Operation{proto.Read(acctKey(int(b) % accounts))},
					Comp: proto.CompSemantic,
				}})
			case 1: // balanced transfer round across both sites
				amt := int64(b%7) + 1
				key := acctKey(int(b/7) % accounts)
				_, _ = sess.Round(ctx, []coord.SubtxnSpec{
					{Site: "s0", Ops: []proto.Operation{proto.AddMin(key, -amt, 0)}, Comp: proto.CompSemantic},
					{Site: "s1", Ops: []proto.Operation{proto.Add(key, amt)}, Comp: proto.CompSemantic},
				})
			case 2: // single-site write round
				_, _ = sess.Round(ctx, []coord.SubtxnSpec{{
					Site: cl.Site(int(b/5) % 2).Name(),
					Ops:  []proto.Operation{proto.Add(acctKey(int(b)%accounts), 0)},
					Comp: proto.CompSemantic,
				}})
			case 3: // doom the session's vote at s1
				if !doomed {
					cl.DoomAtSite("F1", "s1")
					doomed = true
				}
			case 4: // client abandons the session
				sess.Abort(ctx)
				aborted = true
			}
			if aborted || sess.State() != coord.SessionActive {
				break
			}
		}
		res := sess.Commit(ctx)
		_ = res

		qctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := cl.Quiesce(qctx); err != nil {
			t.Fatalf("quiesce: %v", err)
		}

		// Oracle 1: money conservation. Balanced transfers move money
		// between sites; commits, aborts, and compensations all preserve
		// the per-account cross-site total.
		for a := 0; a < accounts; a++ {
			key := storage.Key(acctKey(a))
			got := cl.Site(0).ReadInt64(key) + cl.Site(1).ReadInt64(key)
			if got != 2*initial {
				t.Fatalf("account %d total = %d, want %d (script %x, outcome %v)",
					a, got, 2*initial, script, res.Outcome)
			}
		}
		// Oracle 2: the Section 5 criterion over the recorded history.
		if audit := cl.Audit(); !audit.Correct() {
			t.Fatalf("Section 5 criterion violated (script %x): effective=%d", script, audit.EffectiveCount)
		}
		// Oracle 3: Theorem 2 — no committed reader of compensated state.
		if vs := cl.CompensationViolations(); len(vs) != 0 {
			t.Fatalf("Theorem 2 violations (script %x): %+v", script, vs)
		}
	})
}

func acctKey(a int) string {
	return "acct" + string(rune('a'+a))
}
