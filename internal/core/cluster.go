// Package core assembles the full system — sites, coordinators, simulated
// network, marking board, history recorder — into a runnable multidatabase
// cluster, and is the engine behind the public o2pc package.
//
// A Cluster is the paper's distributed environment in miniature: N
// autonomous site DBMSs (package site) joined by a message network
// (package rpc), with one or more coordinators (package coord) processing
// global transactions under either distributed-2PL 2PC (the baseline) or
// the optimistic O2PC protocol, optionally layered with marking protocol
// P1 or P2. Failure injection (site crash, coordinator crash, link
// partition) and the Section 5 verifier are first-class operations so
// every experiment in EXPERIMENTS.md can be expressed against this one
// type.
package core

import (
	"context"
	"fmt"
	"time"

	"o2pc/internal/compensate"
	"o2pc/internal/coord"
	"o2pc/internal/history"
	"o2pc/internal/marking"
	"o2pc/internal/metrics"
	"o2pc/internal/proto"
	"o2pc/internal/replog"
	"o2pc/internal/rpc"
	"o2pc/internal/sg"
	"o2pc/internal/sim"
	"o2pc/internal/site"
	"o2pc/internal/storage"
	"o2pc/internal/trace"
	"o2pc/internal/txn"
)

// Config parameterizes a Cluster.
type Config struct {
	// Sites is the number of participant DBMSs (default 3). Site node
	// names are "s0", "s1", ....
	Sites int
	// Coordinators is the number of coordinator nodes (default 1), named
	// "c0", "c1", ....
	Coordinators int
	// Replicas is the number of decision-log replicas, named "r0", "r1",
	// .... When positive every coordinator runs Paxos Commit over them (a
	// replog.Leader replaces the local decision log); zero keeps the
	// classic single-coordinator log. Use an odd count — a majority must
	// be reachable for decisions to land.
	Replicas int
	// Network configures the simulated transport (latency, loss, seed).
	Network rpc.Config
	// Record enables history capture for the Section 5 verifier. Leave it
	// on except in throughput-sensitive benchmarks.
	Record bool
	// ReleaseSharedAtVote releases read locks at VOTE-REQ (ablation A1).
	ReleaseSharedAtVote bool
	// CheckStrategy selects the marking-set locking discipline
	// (ablation A2).
	CheckStrategy site.CheckStrategy
	// DisableWriteCoverage turns off Theorem 2 write-set coverage in
	// compensating transactions.
	DisableWriteCoverage bool
	// Compensators registers custom compensators at every site.
	Compensators *compensate.Registry
	// ResolvePeriod tunes the blocked-participant inquiry period.
	ResolvePeriod time.Duration
	// LockTimeout tunes the distributed-deadlock lock-wait timeout at the
	// sites (see site.Config.LockTimeout).
	LockTimeout time.Duration
	// ReadOnlyVotes enables the read-only participant optimization at
	// every site (see site.Config.ReadOnlyVotes; experiment A4).
	ReadOnlyVotes bool
	// LockShards overrides the per-site lock manager shard count; zero
	// selects lock.DefaultShards.
	LockShards int
	// WALGroupCommit enables WAL group commit at every site: concurrent
	// committers coalesce their durability waits into one physical sync
	// (see site.Config.WALGroupCommit).
	WALGroupCommit bool
	// WALGroupWindow and WALGroupMaxBatch tune the group-commit batching;
	// zero selects the wal package defaults.
	WALGroupWindow   time.Duration
	WALGroupMaxBatch int
	// ParallelExec fans the execution phase of unmarked transactions out to
	// their sites concurrently (see coord.Config.ParallelExec). Off by
	// default: parallel chains give up the sequential path's site-order
	// lock acquisition, which matters under high contention.
	ParallelExec bool
	// ExecWorkers, when positive, runs each coordinator's per-site fan-out
	// on a bounded pool of reusable workers instead of goroutine-per-site
	// per phase (see coord.Config.ExecWorkers). Zero keeps plain spawning.
	ExecWorkers int
	// CoalesceRPC batches coordinator→site VOTE-REQs and DECISIONs per
	// destination site into single envelopes, fanned back out at the site
	// (see rpc.Coalescer). Off by default: the per-message-type census of
	// experiment E6 counts envelopes, not their contents, so census-exact
	// runs must leave this off. CoalesceWindow and CoalesceMaxBatch tune
	// the batching; zero selects the rpc package defaults.
	CoalesceRPC      bool
	CoalesceWindow   time.Duration
	CoalesceMaxBatch int
	// Clock drives every timer in the cluster — network latency, lock
	// timeouts, retry backoffs, resolver periods. Nil defaults to the real
	// clock; pass a sim.VirtualClock for deterministic simulation.
	Clock sim.Clock
	// Tracer, when non-nil, records every protocol step — coordinator
	// rounds, site votes and local commits, WAL appends, network messages,
	// compensation runs — as a deterministic virtual-time event log. The
	// same tracer is shared by every node so Events() yields a single
	// totally-ordered timeline.
	Tracer *trace.Tracer
}

// Cluster is a complete in-process multidatabase.
type Cluster struct {
	cfg       Config
	clock     sim.Clock
	network   *rpc.Network
	sites     []*site.Site
	coords    []*coord.Coordinator
	replicas  []*replog.Replica // decision-log replicas (empty unless Replicas > 0)
	leaders   []*replog.Leader  // per-coordinator, parallel to coords (empty unless Replicas > 0)
	recorder  *history.Recorder
	board     *marking.Board
	coalescer *rpc.Coalescer // nil unless CoalesceRPC

	doomed doomedSet
}

// NewCluster assembles and wires a cluster.
func NewCluster(cfg Config) *Cluster {
	if cfg.Sites <= 0 {
		cfg.Sites = 3
	}
	if cfg.Coordinators <= 0 {
		cfg.Coordinators = 1
	}
	clock := sim.OrReal(cfg.Clock)
	if cfg.Network.Clock == nil {
		cfg.Network.Clock = clock
	}
	if cfg.Network.Tracer == nil {
		cfg.Network.Tracer = cfg.Tracer
	}
	cl := &Cluster{
		cfg:     cfg,
		clock:   clock,
		network: rpc.NewNetwork(cfg.Network),
		board:   marking.NewBoard(),
	}
	if cfg.Record {
		cl.recorder = history.NewRecorder()
	}
	cl.doomed.init()

	for i := 0; i < cfg.Sites; i++ {
		name := fmt.Sprintf("s%d", i)
		s := site.NewSite(site.Config{
			Name:                 name,
			ReleaseSharedAtVote:  cfg.ReleaseSharedAtVote,
			CheckStrategy:        cfg.CheckStrategy,
			Compensators:         cfg.Compensators,
			DisableWriteCoverage: cfg.DisableWriteCoverage,
			Recorder:             cl.recorder,
			ResolvePeriod:        cfg.ResolvePeriod,
			LockTimeout:          cfg.LockTimeout,
			ReadOnlyVotes:        cfg.ReadOnlyVotes,
			LockShards:           cfg.LockShards,
			WALGroupCommit:       cfg.WALGroupCommit,
			WALGroupWindow:       cfg.WALGroupWindow,
			WALGroupMaxBatch:     cfg.WALGroupMaxBatch,
			Clock:                clock,
			Tracer:               cfg.Tracer,
		})
		s.SetCaller(cl.network)
		s.SetVoteAbortInjector(cl.doomed.injectorFor(name))
		handler := s.Handle
		if cfg.CoalesceRPC {
			handler = rpc.BatchHandler(handler, clock)
		}
		cl.network.Register(name, handler)
		cl.sites = append(cl.sites, s)
	}
	var replicaNames []string
	for i := 0; i < cfg.Replicas; i++ {
		name := fmt.Sprintf("r%d", i)
		r, err := replog.NewReplica(replog.ReplicaConfig{Name: name, Tracer: cfg.Tracer})
		if err != nil {
			panic(fmt.Sprintf("core: fresh replica %s failed to recover: %v", name, err))
		}
		cl.network.Register(name, r.Handle)
		cl.replicas = append(cl.replicas, r)
		replicaNames = append(replicaNames, name)
	}
	// All coordinators share one coalescer: its queues are per (from, to)
	// pair, so traffic from distinct coordinators never mixes.
	var coordCaller rpc.Caller = cl.network
	if cfg.CoalesceRPC {
		cl.coalescer = rpc.NewCoalescer(cl.network, rpc.CoalesceConfig{
			Window:   cfg.CoalesceWindow,
			MaxBatch: cfg.CoalesceMaxBatch,
			Clock:    clock,
			Tracer:   cfg.Tracer,
		})
		coordCaller = cl.coalescer
	}
	for i := 0; i < cfg.Coordinators; i++ {
		name := fmt.Sprintf("c%d", i)
		var dlog coord.DecisionLog
		if cfg.Replicas > 0 {
			// Replication traffic goes straight to the network: the
			// coalescer batches coordinator→site protocol rounds, and
			// folding ballot fan-outs into those envelopes would couple the
			// majority-ack latency to site traffic.
			leader := replog.NewLeader(replog.Config{
				Group:    name,
				Replicas: replicaNames,
				Caller:   cl.network,
				Clock:    clock,
				Tracer:   cfg.Tracer,
			})
			cl.leaders = append(cl.leaders, leader)
			dlog = leader
		}
		c := coord.New(coord.Config{
			Name:         name,
			IDPrefix:     prefixFor(i),
			Recorder:     cl.recorder,
			Board:        cl.board,
			ParallelExec: cfg.ParallelExec,
			ExecWorkers:  cfg.ExecWorkers,
			Clock:        clock,
			Tracer:       cfg.Tracer,
			DecisionLog:  dlog,
		}, coordCaller)
		cl.network.Register(name, c.Handle)
		cl.coords = append(cl.coords, c)
	}
	return cl
}

// prefixFor gives coordinator i a distinct transaction-ID prefix;
// coordinator 0 uses none so single-coordinator IDs read "T1", "T2", ...
func prefixFor(i int) string {
	if i == 0 {
		return ""
	}
	return fmt.Sprintf("c%d.", i)
}

// Network exposes the simulated transport (failure injection, message
// census).
func (cl *Cluster) Network() *rpc.Network { return cl.network }

// Coalescer exposes the RPC coalescer (nil unless CoalesceRPC is on).
func (cl *Cluster) Coalescer() *rpc.Coalescer { return cl.coalescer }

// Close releases cluster resources held by long-lived goroutines (the
// coordinators' worker pools). Safe to skip for short-lived test
// clusters — parked workers die with the process — but benchmarks that
// build many clusters should Close each one.
func (cl *Cluster) Close() {
	for _, c := range cl.coords {
		c.Close()
	}
}

// Clock returns the cluster's clock (the real clock unless a virtual one
// was configured).
func (cl *Cluster) Clock() sim.Clock { return cl.clock }

// Sites returns the participant list.
func (cl *Cluster) Sites() []*site.Site { return cl.sites }

// Site returns participant i.
func (cl *Cluster) Site(i int) *site.Site { return cl.sites[i] }

// SiteNames returns every participant node name, in index order.
func (cl *Cluster) SiteNames() []string {
	out := make([]string, len(cl.sites))
	for i, s := range cl.sites {
		out[i] = s.Name()
	}
	return out
}

// Coordinator returns coordinator i (0 is the default).
func (cl *Cluster) Coordinator(i int) *coord.Coordinator { return cl.coords[i] }

// Coordinators returns all coordinators.
func (cl *Cluster) Coordinators() []*coord.Coordinator { return cl.coords }

// Board returns the shared marking board.
func (cl *Cluster) Board() *marking.Board { return cl.board }

// Recorder returns the history recorder (nil when Record is off).
func (cl *Cluster) Recorder() *history.Recorder { return cl.recorder }

// Tracer returns the cluster's tracer (nil when tracing is off).
func (cl *Cluster) Tracer() *trace.Tracer { return cl.cfg.Tracer }

// Run executes one global transaction through coordinator 0.
func (cl *Cluster) Run(ctx context.Context, spec coord.TxnSpec) coord.Result {
	return cl.coords[0].Run(ctx, spec)
}

// RunAt executes one global transaction through a specific coordinator.
func (cl *Cluster) RunAt(ctx context.Context, coordIdx int, spec coord.TxnSpec) coord.Result {
	return cl.coords[coordIdx].Run(ctx, spec)
}

// OpenSession opens a multi-shot session through coordinator 0.
func (cl *Cluster) OpenSession(spec coord.SessionSpec) (*coord.Session, error) {
	return cl.coords[0].OpenSession(spec)
}

// OpenSessionAt opens a multi-shot session through a specific coordinator.
func (cl *Cluster) OpenSessionAt(coordIdx int, spec coord.SessionSpec) (*coord.Session, error) {
	return cl.coords[coordIdx].OpenSession(spec)
}

// RunLocal executes a local transaction directly at site i, outside every
// global protocol (site autonomy).
func (cl *Cluster) RunLocal(ctx context.Context, siteIdx int, fn func(t *txn.Txn) error) error {
	return cl.sites[siteIdx].RunLocal(ctx, fn)
}

// SeedInt64 installs an initial integer value at every site under the same
// key (bootstrap convenience).
func (cl *Cluster) SeedInt64(key string, v int64) {
	for _, s := range cl.sites {
		s.SeedInt64(storage.Key(key), v)
	}
}

// SeedSiteInt64 installs an initial integer value at one site.
func (cl *Cluster) SeedSiteInt64(siteIdx int, key string, v int64) {
	cl.sites[siteIdx].SeedInt64(storage.Key(key), v)
}

// History snapshots the recorded execution (nil without Record).
func (cl *Cluster) History() *history.History {
	if cl.recorder == nil {
		return nil
	}
	return cl.recorder.Snapshot()
}

// Audit runs the Section 5 verifier over the recorded history.
func (cl *Cluster) Audit() *sg.Audit {
	h := cl.History()
	if h == nil {
		return nil
	}
	return sg.AuditHistory(h, 0, 0)
}

// CompensationViolations runs the Theorem 2 (atomicity of compensation)
// check over the recorded history, reporting violations whose reader was
// not aborted — the enforceable form of the theorem (use package sg
// directly for the unfiltered list including doomed readers).
func (cl *Cluster) CompensationViolations() []sg.CompensationViolation {
	h := cl.History()
	if h == nil {
		return nil
	}
	return sg.CommittedViolations(sg.CheckCompensationAtomicity(h))
}

// ---- Failure injection ----

// CrashCoordinator takes coordinator i off the network and marks it
// crashed; in-flight transactions stall exactly as a real coordinator
// failure would cause.
func (cl *Cluster) CrashCoordinator(i int) {
	c := cl.coords[i]
	c.SetCrashInjector(func(string, coord.CrashPhase) bool { return true })
	cl.network.SetDown(c.Name(), true)
}

// RecoverCoordinator restores coordinator i: presumed-abort for undecided
// transactions and re-delivery of logged decisions.
func (cl *Cluster) RecoverCoordinator(ctx context.Context, i int) error {
	c := cl.coords[i]
	c.SetCrashInjector(nil)
	cl.network.SetDown(c.Name(), false)
	return c.Recover(ctx)
}

// CrashReplica kills decision-log replica i: it drops its volatile
// acceptor state and leaves the network. Its WAL survives for Recover.
func (cl *Cluster) CrashReplica(i int) {
	r := cl.replicas[i]
	cl.network.SetDown(r.Name(), true)
	r.Crash()
}

// RecoverReplica rebuilds replica i from its WAL and rejoins it.
func (cl *Cluster) RecoverReplica(i int) error {
	r := cl.replicas[i]
	if err := r.Recover(); err != nil {
		return err
	}
	cl.network.SetDown(r.Name(), false)
	return nil
}

// CrashSite takes site i off the network and fails its handlers.
func (cl *Cluster) CrashSite(i int) {
	s := cl.sites[i]
	s.SetCrashed(true)
	cl.network.SetDown(s.Name(), true)
}

// RecoverSite restores site i from its WAL.
func (cl *Cluster) RecoverSite(ctx context.Context, i int) error {
	s := cl.sites[i]
	cl.network.SetDown(s.Name(), false)
	_, err := s.Recover(ctx)
	return err
}

// DoomAtSite arranges for the named site to vote NO on the given
// transaction — the controlled unilateral abort used by workloads to sweep
// the abort rate.
func (cl *Cluster) DoomAtSite(txnID, siteName string) {
	cl.doomed.doom(txnID, siteName)
}

// PublishMetrics adopts every node's stats — coordinator and site counters,
// gauges, and latency histograms, plus the network's per-message-type
// census — into reg for Prometheus-style text exposition.
func (cl *Cluster) PublishMetrics(reg *metrics.Registry) {
	for _, c := range cl.coords {
		c.Stats().Publish(reg, "o2pc_coord_"+c.Name()+"_")
	}
	for i, l := range cl.leaders {
		l.Stats().Publish(reg, "o2pc_coord_"+cl.coords[i].Name()+"_replog_")
	}
	for _, s := range cl.sites {
		s.Stats().Publish(reg, "o2pc_site_"+s.Name()+"_")
		if g := s.GroupCommit(); g != nil {
			g.Stats().Publish(reg, "o2pc_site_"+s.Name()+"_")
		}
	}
	net := cl.network.Counts()
	for _, name := range net.CounterNames() {
		reg.Adopt("o2pc_net_msgs_total_"+name, net.Counter(name))
	}
}

// MessageCounts returns the per-message-type census (experiment E6):
// counter names are the proto type names.
func (cl *Cluster) MessageCounts() map[string]int64 {
	reg := cl.network.Counts()
	out := make(map[string]int64)
	for _, name := range reg.CounterNames() {
		out[name] = reg.Counter(name).Value()
	}
	return out
}

// Quiesce waits until no site has active transactions and no coordinator
// is mid-delivery, bounded by the context. Used by audits so compensation
// has fully completed before the history snapshot.
func (cl *Cluster) Quiesce(ctx context.Context) error {
	for {
		busy := false
		for _, s := range cl.sites {
			if s.Manager().ActiveCount() > 0 {
				busy = true
				break
			}
		}
		if !busy {
			return nil
		}
		if err := cl.clock.Sleep(ctx, time.Millisecond); err != nil {
			return err
		}
	}
}

// Replicas returns the decision-log replicas (empty unless configured).
func (cl *Cluster) ReplicaNodes() []*replog.Replica { return cl.replicas }

// Leader returns coordinator i's replication leader (nil unless the
// cluster runs a replicated decision log).
func (cl *Cluster) Leader(i int) *replog.Leader {
	if len(cl.leaders) == 0 {
		return nil
	}
	return cl.leaders[i]
}

// Protocol and marking re-exports so callers of core need not import proto.
const (
	TwoPC = proto.TwoPC
	O2PC  = proto.O2PC
	Paxos = proto.Paxos

	MarkNone   = proto.MarkNone
	MarkP1     = proto.MarkP1
	MarkP2     = proto.MarkP2
	MarkSimple = proto.MarkSimple
)
