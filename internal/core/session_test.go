package core

import (
	"context"
	"testing"

	"o2pc/internal/coord"
	"o2pc/internal/proto"
	"o2pc/internal/storage"
)

// openSession is a test helper that fails the test on open errors.
func openSession(t *testing.T, cl *Cluster, coordIdx int, spec coord.SessionSpec) *coord.Session {
	t.Helper()
	sess, err := cl.OpenSessionAt(coordIdx, spec)
	if err != nil {
		t.Fatalf("open session: %v", err)
	}
	return sess
}

func TestSessionMultiRoundCommit(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2})
	cl.SeedInt64("acct", 100)
	ctx := context.Background()

	sess := openSession(t, cl, 0, coord.SessionSpec{
		ID: "S1", Protocol: proto.O2PC, Marking: proto.MarkP1,
	})
	// Round 1: read the source balance (shared lock at s0).
	reads, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s0", Ops: []proto.Operation{proto.Read("acct")}, Comp: proto.CompSemantic},
	})
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if got := storage.MustDecodeInt64(reads["s0"]["acct"]); got != 100 {
		t.Fatalf("round 1 read = %d, want 100", got)
	}
	// Round 2: debit at s0 — upgrades the round-1 shared lock to exclusive.
	if _, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s0", Ops: []proto.Operation{proto.AddMin("acct", -30, 0)}, Comp: proto.CompSemantic},
	}); err != nil {
		t.Fatalf("round 2: %v", err)
	}
	// Round 3: credit at s1 — the session's site set grows mid-flight.
	if _, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s1", Ops: []proto.Operation{proto.Add("acct", 30)}, Comp: proto.CompSemantic},
	}); err != nil {
		t.Fatalf("round 3: %v", err)
	}

	res := sess.Commit(ctx)
	if !res.Committed() {
		t.Fatalf("session did not commit: %+v err=%v", res, res.Err)
	}
	if sess.State() != coord.SessionCommitted {
		t.Fatalf("state = %v, want committed", sess.State())
	}
	if got := cl.Site(0).ReadInt64("acct"); got != 70 {
		t.Errorf("s0 acct = %d, want 70", got)
	}
	if got := cl.Site(1).ReadInt64("acct"); got != 130 {
		t.Errorf("s1 acct = %d, want 130", got)
	}
	if audit := cl.Audit(); !audit.Correct() {
		t.Errorf("Section 5 criterion violated: %+v", audit)
	}
}

func TestSessionVoteAbortCompensates(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2})
	cl.SeedInt64("acct", 100)
	ctx := context.Background()

	cl.DoomAtSite("S2", "s1")
	sess := openSession(t, cl, 0, coord.SessionSpec{
		ID: "S2", Protocol: proto.O2PC, Marking: proto.MarkP1,
	})
	if _, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s0", Ops: []proto.Operation{proto.AddMin("acct", -30, 0)}, Comp: proto.CompSemantic},
	}); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if _, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s1", Ops: []proto.Operation{proto.Add("acct", 30)}, Comp: proto.CompSemantic},
	}); err != nil {
		t.Fatalf("round 2: %v", err)
	}

	res := sess.Commit(ctx)
	if res.Committed() {
		t.Fatalf("doomed session committed: %+v", res)
	}
	if res.Outcome != coord.AbortedVote {
		t.Fatalf("outcome = %v, want aborted-vote", res.Outcome)
	}
	if err := cl.Quiesce(ctxWithTimeout(t)); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	// Money conservation after the multi-round abort: both rounds undone.
	if got := cl.Site(0).ReadInt64("acct"); got != 100 {
		t.Errorf("s0 acct = %d, want 100 after compensation", got)
	}
	if got := cl.Site(1).ReadInt64("acct"); got != 100 {
		t.Errorf("s1 acct = %d, want 100 after rollback", got)
	}
	if vs := cl.CompensationViolations(); len(vs) != 0 {
		t.Errorf("Theorem 2 violations: %+v", vs)
	}
}

func TestSessionClientAbort(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2})
	cl.SeedInt64("acct", 100)
	ctx := context.Background()

	sess := openSession(t, cl, 0, coord.SessionSpec{
		ID: "S3", Protocol: proto.O2PC, Marking: proto.MarkP1,
	})
	if _, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s0", Ops: []proto.Operation{proto.Add("acct", 7)}, Comp: proto.CompSemantic},
	}); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	res := sess.Abort(ctx)
	if res.Outcome != coord.AbortedClient {
		t.Fatalf("outcome = %v, want aborted-client", res.Outcome)
	}
	if err := cl.Quiesce(ctxWithTimeout(t)); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if got := cl.Site(0).ReadInt64("acct"); got != 100 {
		t.Errorf("s0 acct = %d, want 100 after client abort", got)
	}
	// Rounds after settling are rejected; Commit just reports the result.
	if _, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s0", Ops: []proto.Operation{proto.Add("acct", 1)}, Comp: proto.CompSemantic},
	}); err == nil {
		t.Errorf("round on aborted session succeeded")
	}
	if res := sess.Commit(ctx); res.Outcome != coord.AbortedClient {
		t.Errorf("commit after abort = %v, want aborted-client", res.Outcome)
	}
}

// TestSessionReadsExposedThenAborts is the multi-shot property test of
// ISSUE 6: a session that reads exposed-but-undecided data via R1
// admission, whose global decision is ABORT, must leave every account
// conserved — money conservation per round, not just per transaction.
//
// Construction: Ta (O2PC) exposes x=105 at s0 (its coordinator crashes
// after the votes, so the abort decision is delayed); session Sb then
// reads x at s0 in round 1 — an R1-admitted read of exposed, undecided
// data — and runs a two-round transfer that is doomed at s1. Both
// transactions abort; compensation must restore every balance.
func TestSessionReadsExposedThenAborts(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2, Coordinators: 2})
	cl.SeedInt64("x", 100)
	cl.SeedInt64("b", 500)
	ctx := context.Background()

	cl.Coordinator(0).SetCrashInjector(func(id string, phase coord.CrashPhase) bool {
		return id == "Ta" && phase == coord.CrashAfterVotes
	})
	ra := cl.Run(ctx, coord.TxnSpec{
		ID: "Ta", Protocol: proto.O2PC, Marking: proto.MarkP1,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.Add("x", 5)}, Comp: proto.CompSemantic},
		},
	})
	if ra.Committed() {
		t.Fatalf("Ta committed despite crash injector: %+v", ra)
	}

	// Ta is now exposed-undecided at s0 (locally committed, locks released,
	// no decision). The session starts on the other coordinator.
	cl.DoomAtSite("Sb", "s1")
	sess := openSession(t, cl, 1, coord.SessionSpec{
		ID: "Sb", Protocol: proto.O2PC, Marking: proto.MarkP1,
	})
	reads, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s0", Ops: []proto.Operation{proto.Read("x")}, Comp: proto.CompSemantic},
	})
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if got := storage.MustDecodeInt64(reads["s0"]["x"]); got != 105 {
		t.Fatalf("round 1 read x = %d, want the exposed 105", got)
	}
	if _, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s0", Ops: []proto.Operation{proto.AddMin("b", -50, 0)}, Comp: proto.CompSemantic},
	}); err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if _, err := sess.Round(ctx, []coord.SubtxnSpec{
		{Site: "s1", Ops: []proto.Operation{proto.Add("b", 50)}, Comp: proto.CompSemantic},
	}); err != nil {
		t.Fatalf("round 3: %v", err)
	}
	rb := sess.Commit(ctx)
	if rb.Committed() {
		t.Fatalf("doomed session committed: %+v", rb)
	}

	// Ta's coordinator recovers and presumes abort; s0 compensates.
	if err := cl.RecoverCoordinator(ctx, 0); err != nil {
		t.Fatalf("recover coordinator: %v", err)
	}
	if err := cl.Quiesce(ctxWithTimeout(t)); err != nil {
		t.Fatalf("quiesce: %v", err)
	}

	// Money conservation across both aborts, account by account.
	if got := cl.Site(0).ReadInt64("x"); got != 100 {
		t.Errorf("s0 x = %d, want 100", got)
	}
	if got := cl.Site(1).ReadInt64("x"); got != 100 {
		t.Errorf("s1 x = %d, want 100", got)
	}
	if got := cl.Site(0).ReadInt64("b"); got != 500 {
		t.Errorf("s0 b = %d, want 500", got)
	}
	if got := cl.Site(1).ReadInt64("b"); got != 500 {
		t.Errorf("s1 b = %d, want 500", got)
	}
	if vs := cl.CompensationViolations(); len(vs) != 0 {
		t.Errorf("Theorem 2 violations: %+v", vs)
	}
	if audit := cl.Audit(); !audit.Correct() {
		t.Errorf("Section 5 criterion violated: effective=%d", audit.EffectiveCount)
	}
}
