package core

import "sync"

// doomedSet routes controlled unilateral aborts: a transaction doomed at a
// site makes exactly that site's vote-abort injector fire once.
type doomedSet struct {
	mu sync.Mutex
	m  map[string]string // txnID -> site name that will vote NO
}

func (d *doomedSet) init() { d.m = make(map[string]string) }

func (d *doomedSet) doom(txnID, siteName string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[txnID] = siteName
}

// injectorFor returns the per-site predicate consulted at VOTE-REQ time.
func (d *doomedSet) injectorFor(siteName string) func(txnID string) bool {
	return func(txnID string) bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.m[txnID] == siteName {
			delete(d.m, txnID)
			return true
		}
		return false
	}
}
