package core

import (
	"context"
	"testing"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/proto"
)

func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg.Record = true
	return NewCluster(cfg)
}

func transferSpec(protocol proto.Protocol, marking proto.MarkProtocol, amount int64) coord.TxnSpec {
	return coord.TxnSpec{
		Protocol: protocol,
		Marking:  marking,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.AddMin("acct", -amount, 0)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Add("acct", amount)}, Comp: proto.CompSemantic},
		},
	}
}

func TestO2PCCommit(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2})
	cl.SeedInt64("acct", 100)
	ctx := context.Background()

	res := cl.Run(ctx, transferSpec(proto.O2PC, proto.MarkP1, 30))
	if !res.Committed() {
		t.Fatalf("transfer did not commit: %+v err=%v", res, res.Err)
	}
	if got := cl.Site(0).ReadInt64("acct"); got != 70 {
		t.Errorf("s0 acct = %d, want 70", got)
	}
	if got := cl.Site(1).ReadInt64("acct"); got != 130 {
		t.Errorf("s1 acct = %d, want 130", got)
	}
}

func TestO2PCVoteAbortCompensates(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2})
	cl.SeedInt64("acct", 100)
	ctx := context.Background()

	spec := transferSpec(proto.O2PC, proto.MarkP1, 30)
	spec.ID = "Tdoomed"
	cl.DoomAtSite("Tdoomed", "s1")

	res := cl.Run(ctx, spec)
	if res.Committed() {
		t.Fatalf("doomed transfer committed: %+v", res)
	}
	if res.Outcome != coord.AbortedVote {
		t.Fatalf("outcome = %v, want aborted-vote", res.Outcome)
	}
	if err := cl.Quiesce(ctxWithTimeout(t)); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	// Semantic atomicity: both balances restored.
	if got := cl.Site(0).ReadInt64("acct"); got != 100 {
		t.Errorf("s0 acct = %d, want 100 after compensation", got)
	}
	if got := cl.Site(1).ReadInt64("acct"); got != 100 {
		t.Errorf("s1 acct = %d, want 100 after rollback", got)
	}
	// Under P1, the writing sites are marked undone w.r.t. the aborted txn
	// (s0 locally committed then compensated; s1 rolled back at vote).
	if !cl.Site(0).Marks().Contains("Tdoomed") {
		t.Errorf("s0 not marked undone wrt Tdoomed")
	}
	if !cl.Site(1).Marks().Contains("Tdoomed") {
		t.Errorf("s1 not marked undone wrt Tdoomed")
	}
}

func TestTwoPCCommitAndAbort(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2})
	cl.SeedInt64("acct", 100)
	ctx := context.Background()

	if res := cl.Run(ctx, transferSpec(proto.TwoPC, proto.MarkNone, 10)); !res.Committed() {
		t.Fatalf("2PC transfer did not commit: err=%v", res.Err)
	}
	spec := transferSpec(proto.TwoPC, proto.MarkNone, 10)
	spec.ID = "Tno"
	cl.DoomAtSite("Tno", "s0")
	if res := cl.Run(ctx, spec); res.Committed() {
		t.Fatalf("doomed 2PC transfer committed")
	}
	if err := cl.Quiesce(ctxWithTimeout(t)); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if got := cl.Site(0).ReadInt64("acct"); got != 90 {
		t.Errorf("s0 acct = %d, want 90", got)
	}
	if got := cl.Site(1).ReadInt64("acct"); got != 110 {
		t.Errorf("s1 acct = %d, want 110", got)
	}
}

func TestExecConstraintFailureAborts(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2})
	cl.SeedInt64("acct", 10)
	ctx := context.Background()

	// Withdraw more than the balance: s0's AddMin fails during execution.
	res := cl.Run(ctx, transferSpec(proto.O2PC, proto.MarkP1, 50))
	if res.Committed() {
		t.Fatalf("over-withdrawal committed")
	}
	if res.Outcome != coord.AbortedExec {
		t.Fatalf("outcome = %v, want aborted-exec", res.Outcome)
	}
	if got := cl.Site(0).ReadInt64("acct"); got != 10 {
		t.Errorf("s0 acct = %d, want 10", got)
	}
	if got := cl.Site(1).ReadInt64("acct"); got != 10 {
		t.Errorf("s1 acct = %d, want 10 (never executed)", got)
	}
}

func TestAuditCleanRun(t *testing.T) {
	cl := testCluster(t, Config{Sites: 3})
	cl.SeedInt64("x", 0)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		res := cl.Run(ctx, coord.TxnSpec{
			Protocol: proto.O2PC,
			Marking:  proto.MarkP1,
			Subtxns: []coord.SubtxnSpec{
				{Site: "s0", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
				{Site: "s1", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
				{Site: "s2", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
			},
		})
		if !res.Committed() {
			t.Fatalf("txn %d did not commit: %v", i, res.Err)
		}
	}
	audit := cl.Audit()
	if !audit.Correct() {
		t.Fatalf("audit failed: local cycles=%v regular=%d", audit.LocalCycles, audit.RegularCount)
	}
	if v := cl.CompensationViolations(); len(v) != 0 {
		t.Fatalf("compensation atomicity violations: %v", v)
	}
}

func ctxWithTimeout(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}
