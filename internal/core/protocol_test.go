package core

import (
	"context"
	"testing"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/proto"
	"o2pc/internal/txn"
)

// TestBlockingUnderCoordinatorCrash is the paper's headline scenario
// (experiment E3): a coordinator that fails between the vote round and the
// decision leaves 2PC participants blocked — conflicting transactions wait
// for the whole coordinator outage — while O2PC participants have already
// released their locks.
func TestBlockingUnderCoordinatorCrash(t *testing.T) {
	run := func(protocol proto.Protocol) (blockedDuringOutage bool) {
		cl := testCluster(t, Config{Sites: 2})
		cl.SeedInt64("x", 0)
		ctx := context.Background()

		cl.Coordinator(0).SetCrashInjector(func(id string, phase coord.CrashPhase) bool {
			return id == "Tcrash" && phase == coord.CrashAfterVotes
		})
		spec := coord.TxnSpec{
			ID:       "Tcrash",
			Protocol: protocol,
			Marking:  proto.MarkNone,
			Subtxns: []coord.SubtxnSpec{
				{Site: "s0", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
				{Site: "s1", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
			},
		}
		res := cl.Run(ctx, spec)
		if res.Outcome != coord.AbortedCoordinator {
			t.Fatalf("%v: outcome = %v", protocol, res.Outcome)
		}
		cl.Network().SetDown("c0", true) // the crash is externally visible

		// During the outage, does a conflicting local transaction block?
		probe := make(chan error, 1)
		go func() {
			probe <- cl.RunLocal(ctx, 0, func(tx *txn.Txn) error {
				_, err := tx.ReadInt64(ctx, "x")
				return err
			})
		}()
		select {
		case err := <-probe:
			if err != nil {
				t.Fatalf("%v: probe error: %v", protocol, err)
			}
			blockedDuringOutage = false
		case <-time.After(50 * time.Millisecond):
			blockedDuringOutage = true
		}

		// Recover the coordinator; everything must drain.
		if err := cl.RecoverCoordinator(ctx, 0); err != nil {
			t.Fatalf("recover: %v", err)
		}
		if blockedDuringOutage {
			select {
			case err := <-probe:
				if err != nil {
					t.Fatalf("%v: probe after recovery: %v", protocol, err)
				}
			case <-time.After(2 * time.Second):
				t.Fatalf("%v: probe still blocked after coordinator recovery", protocol)
			}
		}
		qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if err := cl.Quiesce(qctx); err != nil {
			t.Fatalf("quiesce: %v", err)
		}
		// Presumed abort: no effects survive under either protocol.
		if got := cl.Site(0).ReadInt64("x"); got != 0 {
			t.Fatalf("%v: x = %d after presumed abort", protocol, got)
		}
		return blockedDuringOutage
	}

	if !run(proto.TwoPC) {
		t.Errorf("2PC participant did NOT block during the outage — baseline broken")
	}
	if run(proto.O2PC) {
		t.Errorf("O2PC participant blocked during the outage — the protocol's whole point")
	}
}

// TestRegularCycleFormsWithoutP1AndNotWithP1 is experiment E7 in
// miniature: the interleaving of Section 4 — a transaction that sees T1's
// exposed updates at one site and CT1's compensated state at another —
// produces a regular cycle under bare O2PC, and protocol P1 refuses it.
func regularCycleScenario(t *testing.T, marking proto.MarkProtocol) (*Cluster, coord.Result) {
	t.Helper()
	cl := testCluster(t, Config{Sites: 2, Coordinators: 2})
	cl.SeedInt64("x", 100)
	cl.SeedInt64("y", 100)
	ctx := context.Background()

	// T1 updates x at s0 and y at s1; s1 votes NO (rolls back, marks),
	// s0 votes YES (locally commits, exposes). The coordinator crashes
	// after the votes so the abort decision — and s0's compensation — is
	// delayed.
	cl.Coordinator(0).SetCrashInjector(func(id string, phase coord.CrashPhase) bool {
		return id == "T1" && phase == coord.CrashAfterVotes
	})
	cl.DoomAtSite("T1", "s1")
	specT1 := coord.TxnSpec{
		ID:       "T1",
		Protocol: proto.O2PC,
		Marking:  marking,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.Add("x", 5)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Add("y", 5)}, Comp: proto.CompSemantic},
		},
	}
	if res := cl.Run(ctx, specT1); res.Outcome != coord.AbortedCoordinator {
		t.Fatalf("T1 outcome = %v", res.Outcome)
	}

	// T2 reads the exposed x at s0, then reads the rolled-back y at s1,
	// and writes a summary at s0. Run through the second coordinator
	// while the first is down.
	specT2 := coord.TxnSpec{
		ID:       "T2",
		Protocol: proto.O2PC,
		Marking:  marking,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.Read("x"), proto.Add("sum", 1)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Read("y"), proto.Add("sum", 1)}, Comp: proto.CompSemantic},
		},
	}
	resT2 := cl.RunAt(ctx, 1, specT2)

	// Recover the first coordinator: presumed abort reaches s0, whose
	// compensation (CT1) now runs after T2's read there.
	if err := cl.RecoverCoordinator(ctx, 0); err != nil {
		t.Fatalf("recover: %v", err)
	}
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := cl.Quiesce(qctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	return cl, resT2
}

func TestRegularCycleFormsWithoutP1(t *testing.T) {
	cl, resT2 := regularCycleScenario(t, proto.MarkNone)
	if !resT2.Committed() {
		t.Fatalf("T2 should have committed under bare O2PC: %v", resT2.Err)
	}
	audit := cl.Audit()
	if audit.RegularCount == 0 {
		t.Fatalf("no regular cycle detected; cycles=%+v", audit.Cycles)
	}
	// Theorem 2's violation is visible too: T2 read from both T1 and CT1.
	viol := cl.CompensationViolations()
	if len(viol) == 0 {
		t.Fatalf("no compensation-atomicity violation recorded")
	}
	if viol[0].Reader != "T2" || viol[0].Forward != "T1" {
		t.Fatalf("violation = %+v", viol[0])
	}
}

func TestP1PreventsRegularCycle(t *testing.T) {
	cl, resT2 := regularCycleScenario(t, proto.MarkP1)
	if resT2.Committed() {
		t.Fatalf("P1 admitted the dangerous transaction")
	}
	if resT2.Outcome != coord.AbortedMarking {
		t.Fatalf("T2 outcome = %v, want aborted-marking", resT2.Outcome)
	}
	audit := cl.Audit()
	if audit.RegularCount != 0 {
		t.Fatalf("regular cycles under P1: %+v", audit.Cycles)
	}
	if v := cl.CompensationViolations(); len(v) != 0 {
		t.Fatalf("compensation-atomicity violations under P1: %+v", v)
	}
	if !audit.Correct() {
		t.Fatalf("P1 history incorrect")
	}
}

// TestP2PreventsDualScenario drives the same scenario under P2; the dual
// protocol must also keep the history correct (it forbids mixing
// locally-committed with other sites).
func TestP2KeepsHistoryCorrect(t *testing.T) {
	cl, _ := regularCycleScenario(t, proto.MarkP2)
	audit := cl.Audit()
	if audit.RegularCount != 0 {
		t.Fatalf("regular cycles under P2: %+v", audit.Cycles)
	}
}

// TestUDUM1UnmarkingLifecycle follows one mark through the Figure 2 state
// machine end to end: created at the NO vote / compensation, witnessed by
// later transactions, and cleared by an unmark notice riding a decision.
func TestUDUM1UnmarkingLifecycle(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2})
	cl.SeedInt64("a", 100)
	ctx := context.Background()

	// Doomed transaction writing at both sites.
	cl.DoomAtSite("Tdead", "s1")
	res := cl.Run(ctx, coord.TxnSpec{
		ID: "Tdead", Protocol: proto.O2PC, Marking: proto.MarkP1,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.Add("a", 1)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Add("a", 1)}, Comp: proto.CompSemantic},
		},
	})
	if res.Committed() {
		t.Fatalf("doomed txn committed")
	}
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	_ = cl.Quiesce(qctx)
	if !cl.Site(0).Marks().Contains("Tdead") || !cl.Site(1).Marks().Contains("Tdead") {
		t.Fatalf("marks missing after abort: s0=%v s1=%v",
			cl.Site(0).Marks().Snapshot(), cl.Site(1).Marks().Snapshot())
	}

	// Witness transactions: single-site globals at each marked site (the
	// first visit adopts the mark and counts as the UDUM1 witness).
	for _, site := range []string{"s0", "s1"} {
		r := cl.Run(ctx, coord.TxnSpec{
			Protocol: proto.O2PC, Marking: proto.MarkP1,
			Subtxns: []coord.SubtxnSpec{
				{Site: site, Ops: []proto.Operation{proto.Add("a", 1)}, Comp: proto.CompSemantic},
			},
		})
		if !r.Committed() {
			t.Fatalf("witness txn at %s failed: %v (%v)", site, r.Outcome, r.Err)
		}
	}

	// One more transaction per site delivers the piggybacked unmark
	// notices with its decision.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !cl.Site(0).Marks().Contains("Tdead") && !cl.Site(1).Marks().Contains("Tdead") {
			return
		}
		for _, site := range []string{"s0", "s1"} {
			cl.Run(ctx, coord.TxnSpec{
				Protocol: proto.O2PC, Marking: proto.MarkP1,
				Subtxns: []coord.SubtxnSpec{
					{Site: site, Ops: []proto.Operation{proto.Add("a", 1)}, Comp: proto.CompSemantic},
				},
			})
		}
	}
	t.Fatalf("marks never cleared: s0=%v s1=%v pending(s0)=%d pending(s1)=%d outstanding=%v",
		cl.Site(0).Marks().Snapshot(), cl.Site(1).Marks().Snapshot(),
		cl.Board().PendingFor("s0"), cl.Board().PendingFor("s1"),
		cl.Board().Outstanding())
}

// TestSiteCrashRecoveryEndToEnd crashes a 2PC participant after it votes
// YES, recovers it from its WAL, and checks that the decision finally
// lands via re-delivery.
func TestSiteCrashRecoveryEndToEnd(t *testing.T) {
	cl := testCluster(t, Config{Sites: 2})
	cl.SeedInt64("x", 0)
	ctx := context.Background()

	spec := coord.TxnSpec{
		ID: "Tcrash", Protocol: proto.TwoPC, Marking: proto.MarkNone,
		Subtxns: []coord.SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
		},
	}
	// Crash s1 right when the decision round starts: deliverDecision will
	// retry until the site recovers. We simulate by crashing s1 after
	// votes via a goroutine racing the (retried) decision.
	done := make(chan coord.Result, 1)
	crashed := make(chan struct{})
	go func() {
		cl.Site(1).SetVoteAbortInjector(func(id string) bool {
			// Not an abort: we hijack the injector as a "vote happened"
			// hook, crash the site right after its vote reply is built.
			go func() {
				time.Sleep(2 * time.Millisecond)
				cl.CrashSite(1)
				close(crashed)
			}()
			return false
		})
		done <- cl.Run(ctx, spec)
	}()
	<-crashed
	time.Sleep(10 * time.Millisecond)
	if err := cl.RecoverSite(ctx, 1); err != nil {
		t.Fatalf("site recovery: %v", err)
	}
	res := <-done
	if !res.Committed() {
		t.Fatalf("txn outcome = %v err=%v", res.Outcome, res.Err)
	}
	waitForCond(t, 2*time.Second, func() bool {
		return cl.Site(1).ReadInt64("x") == 1
	}, "recovered site applied the decision")
}

func waitForCond(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
