package core

import (
	"context"
	"testing"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/site"
)

// TestLossyNetworkEventuallyConsistent drives transfers over a network
// that drops 10% of messages. Exec failures abort transactions cleanly,
// decision delivery retries until acked, so the system settles with money
// conserved.
func TestLossyNetworkEventuallyConsistent(t *testing.T) {
	cl := NewCluster(Config{
		Sites:   2,
		Network: rpc.Config{DropProb: 0.10, Seed: 99},
	})
	cl.SeedInt64("acct", 1000)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	committed := 0
	for i := 0; i < 40; i++ {
		res := cl.Run(ctx, coord.TxnSpec{
			Protocol: proto.O2PC,
			Marking:  proto.MarkP1,
			Subtxns: []coord.SubtxnSpec{
				{Site: "s0", Ops: []proto.Operation{proto.AddMin("acct", -5, 0)}, Comp: proto.CompSemantic},
				{Site: "s1", Ops: []proto.Operation{proto.Add("acct", 5)}, Comp: proto.CompSemantic},
			},
		})
		if res.Committed() {
			committed++
		}
	}
	if committed == 0 {
		t.Fatalf("nothing committed through the lossy network")
	}
	qctx, qcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer qcancel()
	if err := cl.Quiesce(qctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	total := cl.Site(0).ReadInt64("acct") + cl.Site(1).ReadInt64("acct")
	if total != 2000 {
		t.Fatalf("money not conserved over lossy network: %d (committed=%d)", total, committed)
	}
	t.Logf("lossy network: %d/40 committed, money conserved", committed)
}

// TestDecisionRetriesThroughSiteOutage commits a transaction whose
// decision cannot initially be delivered to one O2PC participant; the
// coordinator keeps retrying and the site learns its fate after healing.
func TestDecisionRetriesThroughSiteOutage(t *testing.T) {
	cl := NewCluster(Config{
		Sites:   2,
		Network: rpc.Config{MinLatency: 3 * time.Millisecond, MaxLatency: 5 * time.Millisecond},
	})
	cl.SeedInt64("x", 0)
	ctx := context.Background()

	// Sever only the c0 -> s1 direction as soon as s1 has voted YES: the
	// in-flight vote reply still reaches the coordinator, but the decision
	// cannot be delivered and must be retried.
	cl.Site(1).SetVoteAbortInjector(func(id string) bool {
		if id == "Tout" {
			cl.Network().SetOneWayPartition("c0", "s1", true)
		}
		return false
	})
	done := make(chan coord.Result, 1)
	go func() {
		done <- cl.Run(ctx, coord.TxnSpec{
			ID: "Tout", Protocol: proto.O2PC, Marking: proto.MarkNone,
			Subtxns: []coord.SubtxnSpec{
				{Site: "s0", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
				{Site: "s1", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
			},
		})
	}()
	// s1 voted YES and locally committed, but can't receive the decision.
	time.Sleep(60 * time.Millisecond)
	cl.Network().SetOneWayPartition("c0", "s1", false)
	res := <-done
	if !res.Committed() {
		t.Fatalf("outcome = %v err=%v", res.Outcome, res.Err)
	}
	// Both sites applied the effects.
	deadline := time.Now().Add(2 * time.Second)
	for cl.Site(1).ReadInt64("x") != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := cl.Site(1).ReadInt64("x"); got != 1 {
		t.Fatalf("s1 x = %d", got)
	}
}

// TestCheckHoldDeadlockResolved reproduces the Section 6.2 deadlock shape
// under the CheckHold strategy and verifies the system makes progress
// anyway (waits-for detection picks a victim).
func TestCheckHoldDeadlockResolved(t *testing.T) {
	// A generous lock timeout keeps the run meaningful under -race, where
	// everything is ~10x slower and the default timeout would abort every
	// transaction before the deadlock machinery even engages.
	cl := NewCluster(Config{Sites: 2, CheckStrategy: site.CheckHold, LockTimeout: 2 * time.Second})
	cl.SeedInt64("hot", 1<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A stream of doomed transactions forces compensations (R2 writes the
	// marking set under X) racing admissions (R1 holds S on it).
	results := make(chan coord.Result, 40)
	for i := 0; i < 40; i++ {
		go func(i int) {
			id := "Th" + string(rune('0'+i%10)) + string(rune('a'+i/10))
			if i%4 == 0 {
				cl.DoomAtSite(id, "s1")
			}
			results <- cl.Run(ctx, coord.TxnSpec{
				ID: id, Protocol: proto.O2PC, Marking: proto.MarkP1,
				Subtxns: []coord.SubtxnSpec{
					{Site: "s0", Ops: []proto.Operation{proto.Add("hot", 1)}, Comp: proto.CompSemantic},
					{Site: "s1", Ops: []proto.Operation{proto.Add("hot", 1)}, Comp: proto.CompSemantic},
				},
			})
		}(i)
	}
	committed := 0
	for i := 0; i < 40; i++ {
		select {
		case res := <-results:
			if res.Committed() {
				committed++
			}
		case <-ctx.Done():
			t.Fatalf("deadlocked: only %d/40 transactions resolved", i)
		}
	}
	if committed == 0 {
		t.Fatalf("no transaction survived the CheckHold gauntlet")
	}
	t.Logf("CheckHold: %d/40 committed, rest aborted cleanly", committed)
}
