package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/site"
)

// TestLossyNetworkEventuallyConsistent drives transfers over a network
// that drops 10% of messages. Exec failures abort transactions cleanly,
// decision delivery retries until acked, so the system settles with money
// conserved. The run is entirely in virtual time: the retry backoffs and
// delivery timeouts that used to make this test slow are simulated.
func TestLossyNetworkEventuallyConsistent(t *testing.T) {
	clock := sim.NewVirtualClock()
	cl := NewCluster(Config{
		Sites: 2,
		Clock: clock,
		Network: rpc.Config{
			DropProb:   0.10,
			Seed:       99,
			MinLatency: 100 * time.Microsecond,
			MaxLatency: 2 * time.Millisecond,
		},
	})
	cl.SeedInt64("acct", 1000)
	ctx, cancel := clock.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	committed := 0
	for i := 0; i < 40; i++ {
		res := cl.Run(ctx, coord.TxnSpec{
			Protocol: proto.O2PC,
			Marking:  proto.MarkP1,
			Subtxns: []coord.SubtxnSpec{
				{Site: "s0", Ops: []proto.Operation{proto.AddMin("acct", -5, 0)}, Comp: proto.CompSemantic},
				{Site: "s1", Ops: []proto.Operation{proto.Add("acct", 5)}, Comp: proto.CompSemantic},
			},
		})
		if res.Committed() {
			committed++
		}
	}
	if committed == 0 {
		t.Fatalf("nothing committed through the lossy network")
	}
	qctx, qcancel := clock.WithTimeout(context.Background(), 20*time.Second)
	defer qcancel()
	if err := cl.Quiesce(qctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	total := cl.Site(0).ReadInt64("acct") + cl.Site(1).ReadInt64("acct")
	if total != 2000 {
		t.Fatalf("money not conserved over lossy network: %d (committed=%d)", total, committed)
	}
	t.Logf("lossy network: %d/40 committed, money conserved", committed)
}

// TestDecisionRetriesThroughSiteOutage commits a transaction whose
// decision cannot initially be delivered to one O2PC participant; the
// coordinator keeps retrying and the site learns its fate after healing.
func TestDecisionRetriesThroughSiteOutage(t *testing.T) {
	clock := sim.NewVirtualClock()
	cl := NewCluster(Config{
		Sites:   2,
		Clock:   clock,
		Network: rpc.Config{MinLatency: 3 * time.Millisecond, MaxLatency: 5 * time.Millisecond},
	})
	cl.SeedInt64("x", 0)
	ctx, cancel := clock.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Sever only the c0 -> s1 direction as soon as s1 has voted YES: the
	// in-flight vote reply still reaches the coordinator, but the decision
	// cannot be delivered and must be retried.
	cl.Site(1).SetVoteAbortInjector(func(id string) bool {
		if id == "Tout" {
			cl.Network().SetOneWayPartition("c0", "s1", true)
		}
		return false
	})
	var res coord.Result
	g := sim.NewGroup(clock)
	g.Go(func() {
		res = cl.Run(ctx, coord.TxnSpec{
			ID: "Tout", Protocol: proto.O2PC, Marking: proto.MarkNone,
			Subtxns: []coord.SubtxnSpec{
				{Site: "s0", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
				{Site: "s1", Ops: []proto.Operation{proto.Add("x", 1)}, Comp: proto.CompSemantic},
			},
		})
	})
	// s1 voted YES and locally committed, but can't receive the decision.
	_ = clock.Sleep(ctx, 60*time.Millisecond)
	cl.Network().SetOneWayPartition("c0", "s1", false)
	g.Wait()
	if !res.Committed() {
		t.Fatalf("outcome = %v err=%v", res.Outcome, res.Err)
	}
	// Both sites applied the effects; the retried decision lands within a
	// couple of retry periods of virtual time.
	start := clock.Now()
	for cl.Site(1).ReadInt64("x") != 1 && clock.Since(start) < 2*time.Second {
		_ = clock.Sleep(ctx, time.Millisecond)
	}
	if got := cl.Site(1).ReadInt64("x"); got != 1 {
		t.Fatalf("s1 x = %d", got)
	}
}

// TestCheckHoldDeadlockResolved reproduces the Section 6.2 deadlock shape
// under the CheckHold strategy and verifies the system makes progress
// anyway (waits-for detection picks a victim). Lock waits, timeouts and
// deadlock probes all run on the virtual clock, so the gauntlet is a
// deterministic schedule rather than a wall-clock race.
func TestCheckHoldDeadlockResolved(t *testing.T) {
	clock := sim.NewVirtualClock()
	cl := NewCluster(Config{
		Sites:         2,
		CheckStrategy: site.CheckHold,
		LockTimeout:   2 * time.Second,
		Clock:         clock,
		Network: rpc.Config{
			MinLatency: 100 * time.Microsecond,
			MaxLatency: 2 * time.Millisecond,
		},
	})
	cl.SeedInt64("hot", 1<<20)
	ctx, cancel := clock.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A stream of doomed transactions forces compensations (R2 writes the
	// marking set under X) racing admissions (R1 holds S on it).
	var mu sync.Mutex
	var results []coord.Result
	g := sim.NewGroup(clock)
	for i := 0; i < 40; i++ {
		i := i
		g.Go(func() {
			// Park each freshly-spawned worker on its own timer first, so
			// the burst enters the cluster one at a time.
			_ = clock.Sleep(ctx, time.Duration(i+1)*time.Microsecond)
			id := "Th" + string(rune('0'+i%10)) + string(rune('a'+i/10))
			if i%4 == 0 {
				cl.DoomAtSite(id, "s1")
			}
			res := cl.Run(ctx, coord.TxnSpec{
				ID: id, Protocol: proto.O2PC, Marking: proto.MarkP1,
				Subtxns: []coord.SubtxnSpec{
					{Site: "s0", Ops: []proto.Operation{proto.Add("hot", 1)}, Comp: proto.CompSemantic},
					{Site: "s1", Ops: []proto.Operation{proto.Add("hot", 1)}, Comp: proto.CompSemantic},
				},
			})
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		})
	}
	g.Wait()
	if ctx.Err() != nil {
		t.Fatalf("deadlocked: run context expired with %d/40 transactions resolved", len(results))
	}
	committed := 0
	for _, res := range results {
		if res.Committed() {
			committed++
		}
	}
	if committed == 0 {
		t.Fatalf("no transaction survived the CheckHold gauntlet")
	}
	t.Logf("CheckHold: %d/40 committed, rest aborted cleanly", committed)
}
