package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
)

// tracedCluster runs one committing and one doomed (aborted, then
// compensated) O2PC transfer under a traced virtual-time cluster and
// returns the captured event log.
func tracedCluster(t *testing.T) []trace.Event {
	t.Helper()
	clock := sim.NewVirtualClock()
	tracer := trace.New(clock, trace.DefaultNodeCapacity)
	cl := NewCluster(Config{
		Sites:  2,
		Clock:  clock,
		Tracer: tracer,
		Network: rpc.Config{
			MinLatency: 100 * time.Microsecond,
			MaxLatency: time.Millisecond,
			Seed:       1,
		},
	})
	cl.SeedInt64("acct", 1000)
	ctx, cancel := clock.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	spec := func(id string) coord.TxnSpec {
		return coord.TxnSpec{
			ID:       id,
			Protocol: proto.O2PC,
			Marking:  proto.MarkP1,
			Subtxns: []coord.SubtxnSpec{
				{Site: "s0", Ops: []proto.Operation{proto.AddMin("acct", -5, 0)}, Comp: proto.CompSemantic},
				{Site: "s1", Ops: []proto.Operation{proto.Add("acct", 5)}, Comp: proto.CompSemantic},
			},
		}
	}
	if res := cl.Run(ctx, spec("Tok")); !res.Committed() {
		t.Fatalf("Tok did not commit: %+v", res)
	}
	// s1 votes NO, so s0 — which locally committed and released its locks
	// at its YES vote — must compensate on the abort decision.
	cl.DoomAtSite("Tbad", "s1")
	if res := cl.Run(ctx, spec("Tbad")); res.Outcome != coord.AbortedVote {
		t.Fatalf("Tbad outcome = %v, want aborted-vote", res.Outcome)
	}
	qctx, qcancel := clock.WithTimeout(context.Background(), time.Minute)
	defer qcancel()
	if err := cl.Quiesce(qctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	return cl.Tracer().Events()
}

// typesAt filters the event types of one transaction at one node, in
// trace order ("" node means any node).
func typesAt(events []trace.Event, txn, node string) []trace.EventType {
	var out []trace.EventType
	for _, e := range events {
		if e.Txn == txn && (node == "" || e.Node == node) {
			out = append(out, e.Type)
		}
	}
	return out
}

// requireSubsequence asserts want appears in got, in order.
func requireSubsequence(t *testing.T, label string, got, want []trace.EventType) {
	t.Helper()
	i := 0
	for _, g := range got {
		if i < len(want) && g == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Errorf("%s: missing %v (matched %d/%d) in timeline %v", label, want[i], i, len(want), got)
	}
}

// TestTraceCommittedTimeline checks the acceptance criterion for a
// committed transaction: the span timeline covers the whole protocol, from
// BeginTxn through votes, local commits, lock releases and the decision.
func TestTraceCommittedTimeline(t *testing.T) {
	events := tracedCluster(t)

	requireSubsequence(t, "Tok at c0", typesAt(events, "Tok", "c0"), []trace.EventType{
		trace.EvTxnBegin, trace.EvWALAppend, trace.EvExecSend, trace.EvVoteReqSend,
		trace.EvVoteRecv, trace.EvWALAppend, trace.EvDecisionReached,
		trace.EvDecisionSend, trace.EvDecisionAck, trace.EvTxnOutcome,
	})
	// Theorem 2's write-ahead point: the decision record is forced (a
	// wal.sync, which carries no txn id) before the decision is reached.
	synced := false
	for _, e := range events {
		if e.Node != "c0" {
			continue
		}
		if e.Type == trace.EvWALSync {
			synced = true
		}
		if e.Txn == "Tok" && e.Type == trace.EvDecisionReached && !synced {
			t.Error("Tok decision reached at c0 before any WAL sync")
		}
	}
	if !synced {
		t.Error("no wal.sync event at c0")
	}
	for _, site := range []string{"s0", "s1"} {
		requireSubsequence(t, "Tok at "+site, typesAt(events, "Tok", site), []trace.EventType{
			trace.EvExecRecv, trace.EvExecDone, trace.EvVoteReqRecv,
			trace.EvLocalCommit, trace.EvLockRelease, trace.EvVoteYes,
			trace.EvDecisionRecv,
		})
	}
	// Global virtual-time order is causal: the coordinator's decision is
	// reached only after both sites voted, and delivered after that.
	requireSubsequence(t, "Tok globally", typesAt(events, "Tok", ""), []trace.EventType{
		trace.EvTxnBegin, trace.EvVoteReqSend, trace.EvVoteReqRecv, trace.EvVoteYes,
		trace.EvVoteRecv, trace.EvDecisionReached, trace.EvDecisionRecv, trace.EvTxnOutcome,
	})
}

// TestTraceCompensatedTimeline checks the acceptance criterion for an
// aborted transaction whose exposed subtransaction is compensated: s0's
// lane shows local-commit, lock-release, then the abort decision and a
// complete compensation run.
func TestTraceCompensatedTimeline(t *testing.T) {
	events := tracedCluster(t)

	requireSubsequence(t, "Tbad at s0", typesAt(events, "Tbad", "s0"), []trace.EventType{
		trace.EvExecRecv, trace.EvExecDone, trace.EvVoteReqRecv,
		trace.EvLocalCommit, trace.EvLockRelease, trace.EvVoteYes,
		trace.EvDecisionRecv, trace.EvCompBegin, trace.EvCompEnd,
	})
	requireSubsequence(t, "Tbad at s1", typesAt(events, "Tbad", "s1"), []trace.EventType{
		trace.EvExecRecv, trace.EvVoteReqRecv, trace.EvVoteNo,
	})
	requireSubsequence(t, "Tbad at c0", typesAt(events, "Tbad", "c0"), []trace.EventType{
		trace.EvTxnBegin, trace.EvDecisionReached, trace.EvTxnOutcome,
	})
	for _, e := range events {
		if e.Txn == "Tbad" && e.Node == "c0" && e.Type == trace.EvDecisionReached && e.Detail != "abort" {
			t.Errorf("Tbad decision detail = %q, want abort", e.Detail)
		}
		if e.Txn == "Tbad" && e.Node == "c0" && e.Type == trace.EvTxnOutcome && e.Detail != "aborted-vote" {
			t.Errorf("Tbad outcome detail = %q, want aborted-vote", e.Detail)
		}
	}
}

// TestTraceExportsBothFormats checks that the same run exports cleanly as
// JSONL (round-trippable) and as Chrome trace JSON with a lane span per
// (txn, node) for both the committed and the compensated transaction.
func TestTraceExportsBothFormats(t *testing.T) {
	events := tracedCluster(t)

	var jsonl bytes.Buffer
	if err := trace.WriteJSONL(&jsonl, events); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("JSONL round trip lost events: %d != %d", len(back), len(events))
	}

	var chrome bytes.Buffer
	if err := trace.WriteChrome(&chrome, events); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &file); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	spans := make(map[string]int)
	for _, ev := range file.TraceEvents {
		if ev.Phase == "X" {
			spans[ev.Name]++
		}
	}
	// One lane span per participating node plus the coordinator.
	for _, txn := range []string{"Tok", "Tbad"} {
		if spans[txn] < 3 {
			t.Errorf("chrome output has %d lane spans for %s, want >= 3 (c0, s0, s1)", spans[txn], txn)
		}
	}
}
