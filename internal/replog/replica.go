// Package replog implements Paxos Commit (Gray & Lamport) for the
// coordinator's decision log: the transaction's fate is chosen by a
// majority of decision-log replicas instead of one coordinator disk, so a
// coordinator crash never blocks a YES-voting participant once a majority
// of replicas is up.
//
// The mapping onto the paper's protocol (PAPER.md, Section 7's recovery
// discussion): 2PC's single DECISION write-ahead point (Theorem 2) becomes
// a consensus instance per transaction. The Leader — owned by exactly one
// coordinator — runs the ballots; Replicas are the acceptors, one
// single-decree instance per transaction, sharing a per-group term (ballot
// number) register so one NewTerm round promises every instance at once
// (Gray & Lamport's "phase 1 for all instances in advance"). A DECISION is
// sent to participants only after a majority of replicas durably accepted
// it, so any later leader reading a majority is guaranteed to see every
// decision that can have reached a participant.
//
// Roles per node:
//
//   - Replica (this file): the acceptor state machine. Promises terms,
//     accepts BEGIN intents and decision values, grants takeover reads.
//     All state is write-ahead logged (RecTerm, RecBegin, RecAccept) and
//     rebuilt from the WAL after a crash.
//   - Leader (leader.go): the coordinator-side proposer implementing
//     coord.DecisionLog. Elects itself with a NewTerm majority, proposes
//     with Accept majorities, and on takeover (Snapshot) finishes any
//     value a prior leader may have gotten chosen.
package replog

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"o2pc/internal/proto"
	"o2pc/internal/trace"
	"o2pc/internal/wal"
)

// AcceptorState classifies one transaction's consensus instance at a
// replica.
type AcceptorState uint8

const (
	// StateIdle means the replica holds no record of the transaction.
	// Instances are created on first contact, so the state appears only
	// transiently (and in zero values).
	StateIdle AcceptorState = iota
	// StateBegun means the BEGIN intent (participants, marking) is durable
	// but no decision value has been accepted.
	StateBegun
	// StateAccepted means a decision value is durably accepted at AccTerm.
	// The value may or may not be chosen; only a majority read can tell.
	StateAccepted
)

// String returns the acceptor-state mnemonic.
func (s AcceptorState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateBegun:
		return "begun"
	case StateAccepted:
		return "accepted"
	default:
		return fmt.Sprintf("AcceptorState(%d)", uint8(s))
	}
}

// acceptorTxn is one transaction's consensus instance at a replica.
type acceptorTxn struct {
	state   AcceptorState
	sites   []string
	marking proto.MarkProtocol
	accTerm uint64 // term of the accepted value, valid in StateAccepted
	commit  bool   // the accepted value, valid in StateAccepted
}

// ReplicaConfig configures one decision-log replica.
type ReplicaConfig struct {
	// Name is the replica's node name (trace events, RPC registration).
	Name string
	// Log is the replica's write-ahead log. Nil selects an in-memory log.
	Log wal.Log
	// Tracer, when set, records WAL and replication events.
	Tracer *trace.Tracer
}

// Replica is one decision-log acceptor. It serves any number of groups
// (one per coordinator), each with its own term register and transaction
// instances. Safe for concurrent use; Handle is an rpc.Handler.
type Replica struct {
	name   string
	wal    wal.Log
	tracer *trace.Tracer

	mu      sync.Mutex
	crashed bool
	terms   map[string]uint64                  // group -> promised term
	txns    map[string]map[string]*acceptorTxn // group -> txn -> instance
}

// NewReplica returns a replica over cfg.Log (wrapped for tracing when a
// tracer is given). The log is replayed immediately so a replica restarted
// over an existing log resumes with its promises and accepts intact.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	log := cfg.Log
	if log == nil {
		log = wal.NewMemoryLog()
	}
	r := &Replica{
		name:   cfg.Name,
		wal:    trace.WrapLog(log, cfg.Tracer, cfg.Name),
		tracer: cfg.Tracer,
	}
	if err := r.Recover(); err != nil {
		return nil, err
	}
	return r, nil
}

// Name returns the replica's node name.
func (r *Replica) Name() string { return r.name }

// Handle serves the replication RPCs. It is registered as the replica's
// rpc.Handler.
func (r *Replica) Handle(ctx context.Context, from string, req any) (any, error) {
	switch m := req.(type) {
	case proto.RepBegin:
		return r.begin(from, m)
	case *proto.RepBegin:
		return r.begin(from, *m)
	case proto.RepAccept:
		return r.accept(from, m)
	case *proto.RepAccept:
		return r.accept(from, *m)
	case proto.RepNewTerm:
		return r.newTerm(from, m)
	case *proto.RepNewTerm:
		return r.newTerm(from, *m)
	default:
		return nil, fmt.Errorf("replog %s: unexpected request %T", r.name, req)
	}
}

// Crash simulates a process kill: all volatile state is dropped and the
// replica refuses requests until Recover rebuilds it from the WAL.
func (r *Replica) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.crashed = true
	r.terms = nil
	r.txns = nil
}

// Recover rebuilds the acceptor state by replaying the WAL and brings the
// replica back into service. The replay applies the same transitions the
// handlers do, so a rebuilt replica can never promise a lower term or
// forget an accepted value — the two safety obligations of an acceptor.
func (r *Replica) Recover() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	records, err := r.wal.Records()
	if err != nil {
		return fmt.Errorf("replog %s: reading log: %w", r.name, err)
	}
	terms := make(map[string]uint64)
	txns := make(map[string]map[string]*acceptorTxn)
	for _, rec := range records {
		switch rec.Type {
		case wal.RecTerm:
			group, term, err := splitTermAux(rec.Aux)
			if err != nil {
				return fmt.Errorf("replog %s: LSN %d: %w", r.name, rec.LSN, err)
			}
			if term > terms[group] {
				terms[group] = term
			}
		case wal.RecBegin:
			group, sites, marking, err := splitRepBeginAux(rec.Aux)
			if err != nil {
				return fmt.Errorf("replog %s: LSN %d: %w", r.name, rec.LSN, err)
			}
			applyBegin(groupTxns(txns, group), rec.TxnID, sites, marking)
		case wal.RecAccept:
			group, commit, term, err := splitAcceptAux(rec.Aux)
			if err != nil {
				return fmt.Errorf("replog %s: LSN %d: %w", r.name, rec.LSN, err)
			}
			t := instance(groupTxns(txns, group), rec.TxnID)
			t.state = StateAccepted
			t.accTerm = term
			t.commit = commit
			if term > terms[group] {
				terms[group] = term
			}
		default:
			return fmt.Errorf("replog %s: unexpected %v record (LSN %d) in replica log",
				r.name, rec.Type, rec.LSN)
		}
	}
	r.terms = terms
	r.txns = txns
	r.crashed = false
	return nil
}

// begin durably records a transaction's BEGIN intent. Accepted at any term
// >= the group's promise (raising it); stale terms are rejected with the
// current one so the caller learns it was deposed.
func (r *Replica) begin(from string, m proto.RepBegin) (any, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed {
		return nil, fmt.Errorf("replog %s: crashed", r.name)
	}
	cur, ok, err := r.admit(m.Group, m.Term)
	if err != nil {
		return nil, err
	}
	if !ok {
		return proto.RepReply{OK: false, Term: cur}, nil
	}
	applyBegin(groupTxns(r.txns, m.Group), m.TxnID, m.Sites, m.Marking)
	if _, err := r.wal.Append(wal.Record{
		Type:  wal.RecBegin,
		TxnID: m.TxnID,
		Aux:   m.Group + "|" + strings.Join(m.Sites, ",") + "|" + m.Marking.String(),
	}); err != nil {
		return nil, err
	}
	if err := r.wal.Sync(); err != nil {
		return nil, err
	}
	r.tracer.Emit(r.name, trace.EvRepBegin, m.TxnID, from,
		"term="+strconv.FormatUint(m.Term, 10))
	return proto.RepReply{OK: true, Term: m.Term}, nil
}

// accept durably accepts a decision value at m.Term. The write-ahead
// point: the reply that completes the leader's majority must not be sent
// before the accept record is synced, or a crashed majority could forget a
// decision the leader already delivered.
func (r *Replica) accept(from string, m proto.RepAccept) (any, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed {
		return nil, fmt.Errorf("replog %s: crashed", r.name)
	}
	cur, ok, err := r.admit(m.Group, m.Term)
	if err != nil {
		return nil, err
	}
	if !ok {
		return proto.RepReply{OK: false, Term: cur}, nil
	}
	t := instance(groupTxns(r.txns, m.Group), m.TxnID)
	t.state = StateAccepted
	t.accTerm = m.Term
	t.commit = m.Commit
	aux := "abort"
	if m.Commit {
		aux = "commit"
	}
	if _, err := r.wal.Append(wal.Record{
		Type:  wal.RecAccept,
		TxnID: m.TxnID,
		Aux:   m.Group + "|" + aux + "|" + strconv.FormatUint(m.Term, 10),
	}); err != nil {
		return nil, err
	}
	if err := r.wal.Sync(); err != nil {
		return nil, err
	}
	r.tracer.Emit(r.name, trace.EvRepAccept, m.TxnID, from,
		aux+" term="+strconv.FormatUint(m.Term, 10))
	return proto.RepReply{OK: true, Term: m.Term}, nil
}

// newTerm grants a takeover read iff m.Term is strictly greater than the
// group's promise — the strictness is what makes a term's leader unique.
// The grant carries every instance the replica knows for the group, sorted
// for determinism, and is durable before it is sent (a re-granted promise
// after a crash could otherwise elect two leaders at one term).
func (r *Replica) newTerm(from string, m proto.RepNewTerm) (any, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed {
		return nil, fmt.Errorf("replog %s: crashed", r.name)
	}
	if cur := r.terms[m.Group]; m.Term <= cur {
		return proto.RepNewTermReply{OK: false, Term: cur}, nil
	}
	r.terms[m.Group] = m.Term
	if _, err := r.wal.Append(wal.Record{
		Type: wal.RecTerm,
		Aux:  m.Group + "|" + strconv.FormatUint(m.Term, 10),
	}); err != nil {
		return nil, err
	}
	if err := r.wal.Sync(); err != nil {
		return nil, err
	}
	group := r.txns[m.Group]
	ids := make([]string, 0, len(group))
	for id := range group {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	txns := make([]proto.RepTxnState, 0, len(ids))
	for _, id := range ids {
		t := group[id]
		st := proto.RepTxnState{
			TxnID:   id,
			Sites:   append([]string(nil), t.sites...),
			Marking: t.marking,
		}
		switch t.state {
		case StateIdle:
			continue // never stored; an instance exists only once touched
		case StateBegun:
		case StateAccepted:
			st.Accepted = true
			st.AccTerm = t.accTerm
			st.Commit = t.commit
		default:
			return nil, fmt.Errorf("replog %s: corrupt acceptor state %v for %s", r.name, t.state, id)
		}
		txns = append(txns, st)
	}
	r.tracer.Emit(r.name, trace.EvRepTakeover, "", from,
		"grant term="+strconv.FormatUint(m.Term, 10)+" txns="+strconv.Itoa(len(txns)))
	return proto.RepNewTermReply{OK: true, Term: m.Term, Txns: txns}, nil
}

// admit applies the acceptor's term rule for Begin/Accept: any term >= the
// promise is admitted (raising the promise, durably when it changed);
// lower terms are rejected. Returns the group's current term and whether
// the message was admitted. Caller holds r.mu.
func (r *Replica) admit(group string, term uint64) (uint64, bool, error) {
	cur := r.terms[group]
	if term < cur {
		return cur, false, nil
	}
	if term > cur {
		r.terms[group] = term
		// The raised promise rides on the admitted record's sync; a crash
		// before that sync loses the record and the promise together, which
		// is the pre-message state — safe.
		if _, err := r.wal.Append(wal.Record{
			Type: wal.RecTerm,
			Aux:  group + "|" + strconv.FormatUint(term, 10),
		}); err != nil {
			return cur, false, err
		}
	}
	return term, true, nil
}

// groupTxns returns (creating) the per-group instance map.
func groupTxns(m map[string]map[string]*acceptorTxn, group string) map[string]*acceptorTxn {
	g := m[group]
	if g == nil {
		g = make(map[string]*acceptorTxn)
		m[group] = g
	}
	return g
}

// instance returns (creating) one transaction's instance.
func instance(g map[string]*acceptorTxn, id string) *acceptorTxn {
	t := g[id]
	if t == nil {
		t = &acceptorTxn{state: StateBegun}
		g[id] = t
	}
	return t
}

// applyBegin records a BEGIN intent on an instance. Re-BEGINs overwrite
// the participant list (the session path re-logs BEGIN as the list grows;
// last record wins, as in the local log) but never regress an accepted
// value.
func applyBegin(g map[string]*acceptorTxn, id string, sites []string, marking proto.MarkProtocol) {
	t := instance(g, id)
	t.sites = append([]string(nil), sites...)
	if marking != proto.MarkNone {
		t.marking = marking
	}
}

func splitTermAux(aux string) (string, uint64, error) {
	i := strings.LastIndexByte(aux, '|')
	if i < 0 {
		return "", 0, fmt.Errorf("malformed TERM aux %q", aux)
	}
	term, err := strconv.ParseUint(aux[i+1:], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("malformed TERM aux %q: %w", aux, err)
	}
	return aux[:i], term, nil
}

func splitRepBeginAux(aux string) (string, []string, proto.MarkProtocol, error) {
	i := strings.IndexByte(aux, '|')
	j := strings.LastIndexByte(aux, '|')
	if i < 0 || j <= i {
		return "", nil, proto.MarkNone, fmt.Errorf("malformed BEGIN aux %q", aux)
	}
	var sites []string
	if mid := aux[i+1 : j]; mid != "" {
		sites = strings.Split(mid, ",")
	}
	return aux[:i], sites, parseMark(aux[j+1:]), nil
}

func splitAcceptAux(aux string) (string, bool, uint64, error) {
	j := strings.LastIndexByte(aux, '|')
	if j < 0 {
		return "", false, 0, fmt.Errorf("malformed ACCEPT aux %q", aux)
	}
	term, err := strconv.ParseUint(aux[j+1:], 10, 64)
	if err != nil {
		return "", false, 0, fmt.Errorf("malformed ACCEPT aux %q: %w", aux, err)
	}
	rest := aux[:j]
	i := strings.LastIndexByte(rest, '|')
	if i < 0 {
		return "", false, 0, fmt.Errorf("malformed ACCEPT aux %q", aux)
	}
	return rest[:i], rest[i+1:] == "commit", term, nil
}

// parseMark inverts proto.MarkProtocol.String. Unknown spellings fall back
// to MarkNone — the conservative reading for records written by a newer
// version.
func parseMark(s string) proto.MarkProtocol {
	switch s {
	case "P1":
		return proto.MarkP1
	case "P2":
		return proto.MarkP2
	case "simple":
		return proto.MarkSimple
	default:
		return proto.MarkNone
	}
}
