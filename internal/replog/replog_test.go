package replog

import (
	"context"
	"errors"
	"testing"
	"time"

	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/wal"
)

// harness wires a leader and N replicas over a simulated network under a
// virtual clock. The test goroutine created the clock, so it is tracked
// and may call leader methods (which sleep and send) directly.
type harness struct {
	clock    *sim.VirtualClock
	net      *rpc.Network
	replicas []*Replica
	names    []string
	logs     []wal.Log
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	h := &harness{clock: sim.NewVirtualClock()}
	h.net = rpc.NewNetwork(rpc.Config{
		Clock:      h.clock,
		MinLatency: time.Millisecond,
		MaxLatency: 5 * time.Millisecond,
		Seed:       42,
	})
	for i := 0; i < n; i++ {
		name := "r" + string(rune('0'+i))
		log := wal.NewMemoryLog()
		r, err := NewReplica(ReplicaConfig{Name: name, Log: log})
		if err != nil {
			t.Fatalf("NewReplica(%s): %v", name, err)
		}
		h.net.Register(name, r.Handle)
		h.replicas = append(h.replicas, r)
		h.names = append(h.names, name)
		h.logs = append(h.logs, log)
	}
	return h
}

func (h *harness) leader(group string) *Leader {
	return NewLeader(Config{
		Group:      group,
		Replicas:   h.names,
		Caller:     h.net,
		Clock:      h.clock,
		Retries:    3,
		RetryDelay: 10 * time.Millisecond,
	})
}

func TestDecideReachesMajorityAndSticks(t *testing.T) {
	h := newHarness(t, 3)
	l := h.leader("c0")
	ctx := context.Background()

	if err := l.Begin(ctx, "T1", []string{"s0", "s1"}, proto.MarkP1); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	got, err := l.Decide(ctx, "T1", true)
	if err != nil || !got {
		t.Fatalf("Decide = %v, %v; want true, nil", got, err)
	}
	// A second decide — even proposing the opposite value — adopts the
	// chosen one.
	got, err = l.Decide(ctx, "T1", false)
	if err != nil || !got {
		t.Fatalf("re-Decide = %v, %v; want true (chosen), nil", got, err)
	}
	if v := l.Stats().MajorityAcks.Value(); v < 2 {
		t.Fatalf("MajorityAcks = %d, want >= 2 (begin + accept)", v)
	}
	if v := l.Stats().Leader.Value(); v != 1 {
		t.Fatalf("Leader gauge = %d, want 1", v)
	}
	// Every replica that acked holds a durable accept record.
	accepts := 0
	for i, log := range h.logs {
		recs, err := log.Records()
		if err != nil {
			t.Fatalf("records %d: %v", i, err)
		}
		for _, rec := range recs {
			if rec.Type == wal.RecAccept && rec.TxnID == "T1" {
				accepts++
			}
		}
	}
	if accepts < 2 {
		t.Fatalf("durable accepts = %d, want a majority (>= 2)", accepts)
	}
}

func TestMinorityDownStillDecides(t *testing.T) {
	h := newHarness(t, 3)
	h.net.SetDown("r2", true)
	l := h.leader("c0")
	ctx := context.Background()
	if err := l.Begin(ctx, "T1", []string{"s0"}, proto.MarkNone); err != nil {
		t.Fatalf("Begin with one replica down: %v", err)
	}
	if got, err := l.Decide(ctx, "T1", true); err != nil || !got {
		t.Fatalf("Decide with one replica down = %v, %v; want true, nil", got, err)
	}
}

func TestMajorityDownBlocksThenRecovers(t *testing.T) {
	h := newHarness(t, 3)
	l := h.leader("c0")
	ctx := context.Background()
	if err := l.Sync(ctx); err != nil { // elect while all are up
		t.Fatalf("Sync: %v", err)
	}
	h.net.SetDown("r1", true)
	h.net.SetDown("r2", true)
	if _, err := l.Decide(ctx, "T1", true); err == nil {
		t.Fatal("Decide with a majority down succeeded")
	}
	// The decision was not durable anywhere near a majority; once the
	// replicas return, a retry decides cleanly.
	h.net.SetDown("r1", false)
	h.net.SetDown("r2", false)
	if got, err := l.Decide(ctx, "T1", true); err != nil || !got {
		t.Fatalf("Decide after recovery = %v, %v; want true, nil", got, err)
	}
}

// TestTakeoverFinishesMajorityAckedDecision is the blocking-window pin at
// the decision-log level: leader 1 gets a commit majority-acked and then
// dies before delivering the DECISION. Leader 2's takeover read must find
// and finish the commit — no participant waits on the dead leader.
func TestTakeoverFinishesMajorityAckedDecision(t *testing.T) {
	h := newHarness(t, 3)
	ctx := context.Background()

	l1 := h.leader("c0")
	if err := l1.Begin(ctx, "T1", []string{"s0", "s1"}, proto.MarkP1); err != nil {
		t.Fatalf("Begin T1: %v", err)
	}
	if got, err := l1.Decide(ctx, "T1", true); err != nil || !got {
		t.Fatalf("Decide T1 = %v, %v", got, err)
	}
	// T2 is begun but never decided: takeover must surface it for the
	// coordinator's presumed abort.
	if err := l1.Begin(ctx, "T2", []string{"s1"}, proto.MarkNone); err != nil {
		t.Fatalf("Begin T2: %v", err)
	}
	// l1 crashes here (simply never used again).

	l2 := h.leader("c0")
	begun, decisions, err := l2.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if v, ok := decisions["T1"]; !ok || !v {
		t.Fatalf("decisions[T1] = %v, %v; want true (majority-acked commit finished)", v, ok)
	}
	var sawT2 bool
	for _, b := range begun {
		if b.TxnID == "T2" {
			sawT2 = true
			if len(b.Sites) != 1 || b.Sites[0] != "s1" {
				t.Fatalf("T2 sites = %v, want [s1]", b.Sites)
			}
		}
	}
	if !sawT2 {
		t.Fatalf("begun = %v, missing undecided T2", begun)
	}
	if got, err := l2.PresumeAbort(ctx, "T2"); err != nil || got {
		t.Fatalf("PresumeAbort T2 = %v, %v; want false, nil", got, err)
	}
	if l2.Stats().Takeovers.Value() != 1 {
		t.Fatalf("Takeovers = %d, want 1", l2.Stats().Takeovers.Value())
	}

	// The deposed leader can no longer decide anything.
	if _, err := l1.Decide(ctx, "T3", true); !errors.Is(err, ErrDeposed) {
		t.Fatalf("old leader Decide err = %v, want ErrDeposed", err)
	}
	if err := l1.Sync(ctx); !errors.Is(err, ErrDeposed) {
		t.Fatalf("old leader Sync err = %v, want ErrDeposed", err)
	}
}

// TestTakeoverPreservesPossiblyChosenValue plants an accept on a single
// replica — a value that may or may not have been chosen from the old
// leader's point of view — and checks the new leader re-proposes rather
// than presumes abort over it.
func TestTakeoverPreservesPossiblyChosenValue(t *testing.T) {
	h := newHarness(t, 3)
	ctx := context.Background()

	l1 := h.leader("c0")
	if err := l1.Begin(ctx, "T1", []string{"s0"}, proto.MarkNone); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	// Hand-deliver an accept to exactly one replica, as if l1 died mid
	// fan-out after one ack.
	if _, err := h.net.Call(ctx, "c0", "r0", proto.RepAccept{
		Group: "c0", Term: 1, TxnID: "T1", Commit: true,
	}); err != nil {
		t.Fatalf("planting accept: %v", err)
	}

	l2 := h.leader("c0")
	_, decisions, err := l2.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if v, ok := decisions["T1"]; !ok || !v {
		t.Fatalf("decisions[T1] = %v, %v; want the planted commit preserved", v, ok)
	}
}

func TestReplicaCrashLosesNothingDurable(t *testing.T) {
	h := newHarness(t, 3)
	ctx := context.Background()
	l1 := h.leader("c0")
	if err := l1.Begin(ctx, "T1", []string{"s0"}, proto.MarkP2); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if got, err := l1.Decide(ctx, "T1", false); err != nil || got {
		t.Fatalf("Decide = %v, %v; want false, nil", got, err)
	}

	// Crash and recover every replica: promises and accepts must survive
	// the rebuild, so a takeover still finds the abort.
	for i, r := range h.replicas {
		h.net.SetDown(h.names[i], true)
		r.Crash()
	}
	for i, r := range h.replicas {
		if err := r.Recover(); err != nil {
			t.Fatalf("Recover %s: %v", h.names[i], err)
		}
		h.net.SetDown(h.names[i], false)
	}

	l2 := h.leader("c0")
	begun, decisions, err := l2.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if v, ok := decisions["T1"]; !ok || v {
		t.Fatalf("decisions[T1] = %v, %v; want abort preserved across replica crashes", v, ok)
	}
	if len(begun) != 1 || begun[0].TxnID != "T1" || begun[0].Marking != "P2" {
		t.Fatalf("begun = %+v, want [T1 P2]", begun)
	}
}

func TestCrashedReplicaRefusesService(t *testing.T) {
	r, err := NewReplica(ReplicaConfig{Name: "r0"})
	if err != nil {
		t.Fatal(err)
	}
	r.Crash()
	if _, err := r.Handle(context.Background(), "c0",
		proto.RepNewTerm{Group: "c0", Term: 1}); err == nil {
		t.Fatal("crashed replica granted a term")
	}
	if err := r.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if _, err := r.Handle(context.Background(), "c0",
		proto.RepNewTerm{Group: "c0", Term: 1}); err != nil {
		t.Fatalf("recovered replica rejected service: %v", err)
	}
}

// TestConcurrentProposersOneValuePerTerm races a Decide(commit) against a
// PresumeAbort for the same transaction: exactly one value may win, and
// both callers must report that same value.
func TestConcurrentProposersOneValuePerTerm(t *testing.T) {
	h := newHarness(t, 3)
	ctx := context.Background()
	l := h.leader("c0")
	if err := l.Begin(ctx, "T1", []string{"s0"}, proto.MarkNone); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	var commitGot, abortGot bool
	g := sim.NewGroup(h.clock)
	g.Go(func() {
		v, err := l.Decide(ctx, "T1", true)
		if err != nil {
			t.Errorf("Decide: %v", err)
		}
		commitGot = v
	})
	g.Go(func() {
		v, err := l.PresumeAbort(ctx, "T1")
		if err != nil {
			t.Errorf("PresumeAbort: %v", err)
		}
		abortGot = v
	})
	g.Wait()
	if commitGot != abortGot {
		t.Fatalf("racing proposers diverged: Decide saw %v, PresumeAbort saw %v", commitGot, abortGot)
	}
	// Whichever won, every durable accept for T1 carries that one value.
	want := "abort"
	if commitGot {
		want = "commit"
	}
	for i, log := range h.logs {
		recs, err := log.Records()
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.Type != wal.RecAccept || rec.TxnID != "T1" {
				continue
			}
			group, commit, _, err := splitAcceptAux(rec.Aux)
			if err != nil || group != "c0" {
				t.Fatalf("replica %d accept aux %q: %v", i, rec.Aux, err)
			}
			if got := map[bool]string{true: "commit", false: "abort"}[commit]; got != want {
				t.Fatalf("replica %d accepted %s, want %s", i, got, want)
			}
		}
	}
}

func TestAuxRoundTrips(t *testing.T) {
	group, term, err := splitTermAux("c0|17")
	if err != nil || group != "c0" || term != 17 {
		t.Fatalf("splitTermAux = %q, %d, %v", group, term, err)
	}
	if _, _, err := splitTermAux("no-separator"); err == nil {
		t.Fatal("malformed TERM aux accepted")
	}
	group, sites, marking, err := splitRepBeginAux("c1|s0,s1|P1")
	if err != nil || group != "c1" || len(sites) != 2 || marking != proto.MarkP1 {
		t.Fatalf("splitRepBeginAux = %q, %v, %v, %v", group, sites, marking, err)
	}
	if _, sites, _, err := splitRepBeginAux("c1||none"); err != nil || sites != nil {
		t.Fatalf("empty site list = %v, %v; want nil, nil", sites, err)
	}
	group, commit, term, err := splitAcceptAux("c0|commit|3")
	if err != nil || group != "c0" || !commit || term != 3 {
		t.Fatalf("splitAcceptAux = %q, %v, %d, %v", group, commit, term, err)
	}
	if _, _, _, err := splitAcceptAux("c0|3"); err == nil {
		t.Fatal("malformed ACCEPT aux accepted")
	}
}
