package replog

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"o2pc/internal/coord"
	"o2pc/internal/metrics"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
)

// ErrDeposed reports that a higher term was observed: another leader (or
// this leader's own concurrent restart) has claimed the group. A deposed
// leader fails every Decide and Sync — the coordinator above it behaves
// as crashed — until Snapshot runs takeover: claiming a fresh majority of
// promises is exactly what makes a node the leader again.
var ErrDeposed = errors.New("replog: deposed by a higher term")

// proposePoll is the virtual-time granularity at which a proposer waits
// for another in-flight proposal (or election) on the same key to finish.
const proposePoll = time.Millisecond

// Config configures the coordinator-side leader of one replication group.
type Config struct {
	// Group names the replication group — by convention the coordinator's
	// node name, which is also the trace node and the RPC sender.
	Group string
	// Replicas are the decision-log replica node names. Use an odd count;
	// a majority (floor(n/2)+1) must be reachable for progress.
	Replicas []string
	// Caller issues the replication RPCs.
	Caller rpc.Caller
	// Clock supplies time (ballot latency, retry pacing). Nil defaults to
	// the real clock.
	Clock sim.Clock
	// Tracer, when set, records takeover events under the group node.
	Tracer *trace.Tracer
	// Stats receives replication metrics. Nil allocates an unregistered set.
	Stats *Stats
	// Retries bounds the majority rounds attempted per ballot (and the
	// term guesses per election) before giving up. Defaults to 8.
	Retries int
	// RetryDelay paces re-attempts after a failed round. Defaults to 50ms.
	RetryDelay time.Duration
}

// Stats are the leader's replication metrics.
type Stats struct {
	// BallotMs observes, per majority-acked ballot round, the virtual time
	// from fan-out to the majority-th ack — the replication latency a
	// Paxos commit pays where 2PC pays one local fsync.
	BallotMs *metrics.Histogram
	// MajorityAcks counts majority-acked ballot rounds.
	MajorityAcks *metrics.Counter
	// Takeovers counts elections won at term > 1, i.e. actual takeovers
	// from a prior leader.
	Takeovers *metrics.Counter
	// Term is the group's current term as this leader knows it.
	Term *metrics.Gauge
	// Leader is 1 while this node leads the group, 0 before election and
	// after deposal.
	Leader *metrics.Gauge
}

// NewStats returns a fresh, unregistered metric set.
func NewStats() *Stats {
	return &Stats{
		BallotMs:     metrics.NewHistogram(),
		MajorityAcks: &metrics.Counter{},
		Takeovers:    &metrics.Counter{},
		Term:         &metrics.Gauge{},
		Leader:       &metrics.Gauge{},
	}
}

// Publish registers the stats under prefix (e.g. "replog_").
func (s *Stats) Publish(reg *metrics.Registry, prefix string) {
	reg.Adopt(prefix+"ballot_ms", s.BallotMs)
	reg.SetHelp(prefix+"ballot_ms", "Fan-out to majority-ack latency per ballot round (ms).")
	reg.Adopt(prefix+"majority_acks_total", s.MajorityAcks)
	reg.SetHelp(prefix+"majority_acks_total", "Majority-acked ballot rounds.")
	reg.Adopt(prefix+"takeovers_total", s.Takeovers)
	reg.SetHelp(prefix+"takeovers_total", "Elections won at term > 1 (leader takeovers).")
	reg.Adopt(prefix+"term", s.Term)
	reg.SetHelp(prefix+"term", "Current replication term at this leader.")
	reg.Adopt(prefix+"leader", s.Leader)
	reg.SetHelp(prefix+"leader", "1 while this node leads its replication group.")
}

// recoveredTxn is one instance reconstructed from a takeover read: the
// union of what a majority of replicas reported.
type recoveredTxn struct {
	sites    map[string]bool
	marking  proto.MarkProtocol
	accepted bool
	accTerm  uint64
	commit   bool
}

// Leader is the proposer side of Paxos Commit, implementing
// coord.DecisionLog for one replication group. It elects itself lazily on
// first use (or explicitly via Snapshot, the takeover path) and then
// drives one accept ballot per decision.
//
// Locking: mu is never held across a network call or clock sleep — under
// the deterministic virtual clock those are yield points, and a mutex held
// across a yield deadlocks the baton scheduler. Cross-yield exclusion
// (one election at a time, one proposal per transaction) uses token flags
// polled in virtual time instead.
type Leader struct {
	cfg   Config
	clock sim.Clock
	stats *Stats

	mu        sync.Mutex
	term      uint64 // highest term known; ours while elected
	elected   bool
	deposed   bool
	electing  bool            // an election is in flight
	proposing map[string]bool // txn -> an accept ballot is in flight
	chosen    map[string]bool // txn -> decision this leader got chosen
	recovered map[string]*recoveredTxn
}

// NewLeader returns an unelected leader for cfg.Group. The first Begin,
// Decide, Sync, or Snapshot call runs the election.
func NewLeader(cfg Config) *Leader {
	if cfg.Retries == 0 {
		cfg.Retries = 8
	}
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 50 * time.Millisecond
	}
	stats := cfg.Stats
	if stats == nil {
		stats = NewStats()
	}
	return &Leader{
		cfg:       cfg,
		clock:     sim.OrReal(cfg.Clock),
		stats:     stats,
		proposing: make(map[string]bool),
		chosen:    make(map[string]bool),
	}
}

// Stats returns the leader's metric set.
func (l *Leader) Stats() *Stats { return l.stats }

// majority is the quorum size: floor(n/2)+1.
func (l *Leader) majority() int { return len(l.cfg.Replicas)/2 + 1 }

// Begin replicates the transaction's BEGIN intent to a majority — the
// write-ahead point: no subtransaction may ship until any future leader's
// majority read is guaranteed to find the participant list.
func (l *Leader) Begin(ctx context.Context, id string, sites []string, marking proto.MarkProtocol) error {
	if err := l.ensureElected(ctx); err != nil {
		return err
	}
	return l.ballot(ctx, func(term uint64) any {
		return proto.RepBegin{Group: l.cfg.Group, Term: term, TxnID: id, Sites: sites, Marking: marking}
	})
}

// Decide replicates the decision. It returns only after a majority of
// replicas durably accepted the value — the replicated equivalent of
// Theorem 2's DECISION write-ahead point — and returns the value that was
// chosen, which a recovery race may have fixed before us.
func (l *Leader) Decide(ctx context.Context, id string, commit bool) (bool, error) {
	return l.propose(ctx, id, commit)
}

// PresumeAbort proposes abort for a transaction found begun but
// undecided. Safe precisely because Snapshot re-proposed every possibly-
// chosen value first: a begun transaction with no accepted value in the
// majority read cannot have been decided.
func (l *Leader) PresumeAbort(ctx context.Context, id string) (bool, error) {
	return l.propose(ctx, id, false)
}

// Snapshot is leader takeover: claim a fresh term from a majority, union
// their instances, finish (re-propose at our term) every value a prior
// leader may have gotten chosen, and hand the begun set and decisions to
// the coordinator's recovery pass.
func (l *Leader) Snapshot(ctx context.Context) ([]coord.BeginRecord, map[string]bool, error) {
	// Always take a fresh term: a leader recovering over its own group must
	// re-read the majority too, so begins replicated since its first
	// election are in the recovery set (the local log's Snapshot likewise
	// re-reads the whole WAL). A deposed flag is cleared here rather than
	// checked: Snapshot IS the restart, and the majority of promises the
	// election wins below is what re-legitimizes this node as leader.
	l.mu.Lock()
	l.deposed = false
	l.elected = false
	l.recovered = nil
	l.mu.Unlock()
	if err := l.ensureElected(ctx); err != nil {
		return nil, nil, err
	}
	l.mu.Lock()
	rec := l.recovered
	l.recovered = nil
	l.mu.Unlock()

	decisions := make(map[string]bool)
	ids := make([]string, 0, len(rec))
	for id := range rec {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var begun []coord.BeginRecord
	for _, id := range ids {
		t := rec[id]
		if t.accepted {
			// The value may be chosen (a majority may have accepted it, and
			// the old leader may have delivered the DECISION). Re-proposing
			// the same value at our term is safe either way and makes it
			// durable at a majority under our term.
			chosen, err := l.propose(ctx, id, t.commit)
			if err != nil {
				return nil, nil, fmt.Errorf("replog %s: finishing %s: %w", l.cfg.Group, id, err)
			}
			decisions[id] = chosen
		}
		sites := make([]string, 0, len(t.sites))
		for s := range t.sites {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		begun = append(begun, coord.BeginRecord{TxnID: id, Sites: sites, Marking: t.marking.String()})
	}
	l.mu.Lock()
	for id, v := range l.chosen {
		decisions[id] = v
	}
	l.mu.Unlock()
	return begun, decisions, nil
}

// Sync reports leadership: nil while this node leads the group (electing
// first if needed), an error once deposed. The coordinator's Ready — and
// through it the ops plane's /readyz — keys off this.
func (l *Leader) Sync(ctx context.Context) error {
	l.mu.Lock()
	deposed := l.deposed
	l.mu.Unlock()
	if deposed {
		return fmt.Errorf("replog %s: %w", l.cfg.Group, ErrDeposed)
	}
	if err := l.ensureElected(ctx); err != nil {
		return fmt.Errorf("replog %s: %w", l.cfg.Group, err)
	}
	return nil
}

// Close marks the leader down for metrics. The replicas keep the group's
// state; a successor elects over them.
func (l *Leader) Close() error {
	l.stats.Leader.Set(0)
	return nil
}

// ensureElected runs (or waits out) the election. Exactly one election is
// in flight at a time; concurrent callers poll in virtual time. It does
// not consult the deposed flag: a stale ballot of our own may depose us
// mid-takeover, and the election winning a majority is what clears it.
func (l *Leader) ensureElected(ctx context.Context) error {
	for {
		l.mu.Lock()
		if l.elected {
			l.mu.Unlock()
			return nil
		}
		if !l.electing {
			l.electing = true
			guess := l.term + 1
			l.mu.Unlock()
			err := l.elect(ctx, guess)
			l.mu.Lock()
			l.electing = false
			l.mu.Unlock()
			if err != nil {
				return err
			}
			continue
		}
		l.mu.Unlock()
		if err := l.clock.Sleep(ctx, proposePoll); err != nil {
			return err
		}
	}
}

// elect claims a term: NewTerm to every replica, needing a majority of
// grants. A rejection names the rejector's (higher) term, so the next
// guess leapfrogs it. The grants' instance lists are unioned into
// l.recovered for Snapshot — a majority read, so it contains every
// instance whose value can have been chosen.
func (l *Leader) elect(ctx context.Context, guess uint64) error {
	for attempt := 0; ; attempt++ {
		replies, _ := l.fanout(ctx, proto.RepNewTerm{Group: l.cfg.Group, Term: guess})
		grants := 0
		var rejected uint64 // highest term named by a rejection; >= guess
		rec := make(map[string]*recoveredTxn)
		for _, raw := range replies {
			rep, ok := newTermReply(raw)
			if !ok {
				continue
			}
			if !rep.OK {
				if rep.Term > rejected {
					rejected = rep.Term
				}
				continue
			}
			grants++
			for _, t := range rep.Txns {
				mergeRecovered(rec, t)
			}
		}
		if grants >= l.majority() {
			l.mu.Lock()
			l.term = guess
			l.elected = true
			l.deposed = false // a majority of promises makes us the leader again
			l.recovered = rec
			l.mu.Unlock()
			l.stats.Term.Set(int64(guess))
			l.stats.Leader.Set(1)
			if guess > 1 {
				l.stats.Takeovers.Inc()
			}
			l.cfg.Tracer.Emit(l.cfg.Group, trace.EvRepTakeover, "", "",
				"term="+strconv.FormatUint(guess, 10)+" txns="+strconv.Itoa(len(rec)))
			return nil
		}
		if attempt >= l.cfg.Retries {
			return fmt.Errorf("replog %s: no majority for term %d after %d attempts",
				l.cfg.Group, guess, attempt+1)
		}
		if rejected >= guess {
			// Some replica already promised `rejected` (to us or a rival);
			// the next guess must clear it outright.
			guess = rejected + 1
			l.mu.Lock()
			if rejected > l.term {
				l.term = rejected // highest term known, pre-claim
			}
			l.mu.Unlock()
			continue // a rejection is instant knowledge; no pacing needed
		}
		// Not rejected, just short of a majority (replicas unreachable):
		// pace the retry.
		if err := l.clock.Sleep(ctx, l.cfg.RetryDelay); err != nil {
			return err
		}
	}
}

// propose drives one transaction's accept ballot. The per-transaction
// token serializes racing proposers (a run's Decide vs recovery's
// PresumeAbort), so a term never carries two values for one instance; the
// loser adopts the chosen value.
func (l *Leader) propose(ctx context.Context, id string, commit bool) (bool, error) {
	// Fail fast while deposed (before ensureElected, which would happily
	// re-elect): a deposed leader must not decide until Snapshot has
	// re-read the majority.
	l.mu.Lock()
	deposed := l.deposed
	l.mu.Unlock()
	if deposed {
		return false, ErrDeposed
	}
	if err := l.ensureElected(ctx); err != nil {
		return false, err
	}
	for {
		l.mu.Lock()
		if v, ok := l.chosen[id]; ok {
			l.mu.Unlock()
			return v, nil
		}
		if l.deposed {
			l.mu.Unlock()
			return false, ErrDeposed
		}
		if !l.proposing[id] {
			l.proposing[id] = true
			l.mu.Unlock()
			break
		}
		l.mu.Unlock()
		if err := l.clock.Sleep(ctx, proposePoll); err != nil {
			return false, err
		}
	}
	err := l.ballot(ctx, func(term uint64) any {
		return proto.RepAccept{Group: l.cfg.Group, Term: term, TxnID: id, Commit: commit}
	})
	l.mu.Lock()
	if err == nil {
		l.chosen[id] = commit
	}
	delete(l.proposing, id)
	l.mu.Unlock()
	if err != nil {
		return false, err
	}
	return commit, nil
}

// ballot runs majority rounds of one request until a majority acks at the
// leader's term, a higher term deposes us, or the retry budget runs out.
func (l *Leader) ballot(ctx context.Context, build func(term uint64) any) error {
	for attempt := 0; ; attempt++ {
		l.mu.Lock()
		if l.deposed {
			l.mu.Unlock()
			return ErrDeposed
		}
		term := l.term
		l.mu.Unlock()
		acks, higher := l.round(ctx, term, build(term))
		if acks >= l.majority() {
			return nil
		}
		if higher > term {
			l.mu.Lock()
			if l.elected && l.term >= higher {
				// The "rival" is this very leader at a newer term (a
				// concurrent Snapshot re-election). Retry at the new term.
				l.mu.Unlock()
				continue
			}
			l.mu.Unlock()
			l.depose(higher)
			return ErrDeposed
		}
		if attempt >= l.cfg.Retries {
			return fmt.Errorf("replog %s: no majority (%d/%d acks) after %d rounds",
				l.cfg.Group, acks, len(l.cfg.Replicas), attempt+1)
		}
		if err := l.clock.Sleep(ctx, l.cfg.RetryDelay); err != nil {
			return err
		}
	}
}

// round is one fan-out: the request to every replica, counting acks at
// term and reporting the highest conflicting term seen. On a majority it
// observes the majority-th ack's latency — the ballot's replication cost.
func (l *Leader) round(ctx context.Context, term uint64, req any) (acks int, higher uint64) {
	replies, times := l.fanout(ctx, req)
	ackTimes := make([]time.Duration, 0, len(replies))
	for i, raw := range replies {
		rep, ok := repReply(raw)
		if !ok {
			continue
		}
		if rep.OK && rep.Term == term {
			ackTimes = append(ackTimes, times[i])
			continue
		}
		if rep.Term > higher {
			higher = rep.Term
		}
	}
	if len(ackTimes) >= l.majority() {
		sort.Slice(ackTimes, func(i, j int) bool { return ackTimes[i] < ackTimes[j] })
		l.stats.BallotMs.ObserveDuration(ackTimes[l.majority()-1])
		l.stats.MajorityAcks.Inc()
	}
	return len(ackTimes), higher
}

// fanout sends req to every replica concurrently and returns the replies
// (nil where unreachable or errored) with each reply's arrival offset.
func (l *Leader) fanout(ctx context.Context, req any) ([]any, []time.Duration) {
	replies := make([]any, len(l.cfg.Replicas))
	times := make([]time.Duration, len(l.cfg.Replicas))
	start := l.clock.Now()
	g := sim.NewGroup(l.clock)
	for i, replica := range l.cfg.Replicas {
		i, replica := i, replica
		g.Go(func() {
			resp, err := l.cfg.Caller.Call(ctx, l.cfg.Group, replica, req)
			if err != nil {
				return
			}
			replies[i] = resp
			times[i] = l.clock.Since(start)
		})
	}
	g.Wait()
	return replies, times
}

// depose marks the leader deposed: Decide and Sync fail until a Snapshot
// takeover wins a fresh majority of promises.
func (l *Leader) depose(term uint64) {
	l.mu.Lock()
	l.deposed = true
	l.elected = false
	if term > l.term {
		l.term = term
	}
	l.mu.Unlock()
	l.stats.Leader.Set(0)
}

func repReply(raw any) (proto.RepReply, bool) {
	switch m := raw.(type) {
	case proto.RepReply:
		return m, true
	case *proto.RepReply:
		return *m, true
	default:
		return proto.RepReply{}, false
	}
}

func newTermReply(raw any) (proto.RepNewTermReply, bool) {
	switch m := raw.(type) {
	case proto.RepNewTermReply:
		return m, true
	case *proto.RepNewTermReply:
		return *m, true
	default:
		return proto.RepNewTermReply{}, false
	}
}

// mergeRecovered folds one replica's instance report into the union.
// Sites union (a superset presumed-abort delivery set is harmless; a
// subset would strand a participant); the accepted value of the highest
// term wins (terms are single-valued, so equal terms agree).
func mergeRecovered(rec map[string]*recoveredTxn, t proto.RepTxnState) {
	u := rec[t.TxnID]
	if u == nil {
		u = &recoveredTxn{sites: make(map[string]bool)}
		rec[t.TxnID] = u
	}
	for _, s := range t.Sites {
		u.sites[s] = true
	}
	if t.Marking != proto.MarkNone {
		u.marking = t.Marking
	}
	if t.Accepted && (!u.accepted || t.AccTerm > u.accTerm) {
		u.accepted = true
		u.accTerm = t.AccTerm
		u.commit = t.Commit
	}
}

var _ coord.DecisionLog = (*Leader)(nil)
