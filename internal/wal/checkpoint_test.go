package wal

import (
	"fmt"
	"testing"

	"o2pc/internal/storage"
)

func TestCheckpointRecovery(t *testing.T) {
	l := NewMemoryLog()
	store := storage.NewStore()

	// Pre-checkpoint activity: T1 commits, T2 aborts.
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "a", "", "A", false),
		Record{Type: RecCommit, TxnID: "T1"},
		Record{Type: RecBegin, TxnID: "T2"},
		upd("T2", "junk", "", "J", false),
		Record{Type: RecAbort, TxnID: "T2"},
	)
	store.Put("a", storage.Value("A"), "T1")
	if _, err := WriteCheckpoint(l, store); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint activity: T3 commits, T4 in flight.
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T3"},
		upd("T3", "b", "", "B", false),
		Record{Type: RecCommit, TxnID: "T3"},
		Record{Type: RecBegin, TxnID: "T4"},
		upd("T4", "c", "", "C", false),
	)

	fresh := storage.NewStore()
	res, err := Recover(fresh, l)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec, err := fresh.Get("a"); err != nil || string(rec.Value) != "A" {
		t.Fatalf("checkpointed key lost: %v %v", rec, err)
	}
	if rec, err := fresh.Get("b"); err != nil || string(rec.Value) != "B" {
		t.Fatalf("post-checkpoint commit lost: %v %v", rec, err)
	}
	if _, err := fresh.Get("c"); !storage.IsNotFound(err) {
		t.Fatalf("loser survived")
	}
	if _, err := fresh.Get("junk"); !storage.IsNotFound(err) {
		t.Fatalf("pre-checkpoint aborted key resurrected")
	}
	// Pre-checkpoint transactions are not re-analyzed.
	for _, id := range res.Redone {
		if id == "T1" {
			t.Fatalf("pre-checkpoint txn replayed: %v", res.Redone)
		}
	}
}

func TestCheckpointPreservesWriterAttribution(t *testing.T) {
	l := NewMemoryLog()
	store := storage.NewStore()
	store.Put("x", storage.Value("v"), "CTT9")
	if _, err := WriteCheckpoint(l, store); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	fresh := storage.NewStore()
	if _, err := Recover(fresh, l); err != nil {
		t.Fatalf("recover: %v", err)
	}
	rec, _ := fresh.Get("x")
	if rec.Writer != "CTT9" {
		t.Fatalf("writer = %q, want CTT9 (reads-from attribution must survive checkpoints)", rec.Writer)
	}
}

func TestIncompleteCheckpointIgnored(t *testing.T) {
	l := NewMemoryLog()
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "a", "", "A", false),
		Record{Type: RecCommit, TxnID: "T1"},
		// Torn checkpoint: begin without end.
		Record{Type: RecCheckpoint, TxnID: ckptTxnID, Aux: ckptBegin},
	)
	fresh := storage.NewStore()
	if _, err := Recover(fresh, l); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec, err := fresh.Get("a"); err != nil || string(rec.Value) != "A" {
		t.Fatalf("torn checkpoint lost pre-history: %v %v", rec, err)
	}
}

func TestLastOfSeveralCheckpointsWins(t *testing.T) {
	l := NewMemoryLog()
	s1 := storage.NewStore()
	s1.Put("k", storage.Value("old"), "T1")
	if _, err := WriteCheckpoint(l, s1); err != nil {
		t.Fatalf("ckpt1: %v", err)
	}
	s2 := storage.NewStore()
	s2.Put("k", storage.Value("new"), "T2")
	if _, err := WriteCheckpoint(l, s2); err != nil {
		t.Fatalf("ckpt2: %v", err)
	}
	fresh := storage.NewStore()
	if _, err := Recover(fresh, l); err != nil {
		t.Fatalf("recover: %v", err)
	}
	rec, _ := fresh.Get("k")
	if string(rec.Value) != "new" {
		t.Fatalf("k = %q, want value from the last checkpoint", rec.Value)
	}
}

func TestCompactShrinksFileLog(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	store := storage.NewStore()
	for i := 0; i < 50; i++ {
		key := storage.Key(fmt.Sprintf("k%d", i))
		appendAll(t, l,
			Record{Type: RecBegin, TxnID: fmt.Sprintf("T%d", i)},
			upd(fmt.Sprintf("T%d", i), key, "", "v", false),
			Record{Type: RecCommit, TxnID: fmt.Sprintf("T%d", i)},
		)
		store.Put(key, storage.Value("v"), fmt.Sprintf("T%d", i))
	}
	_ = l.Sync()
	before, _ := l.Records()
	_ = l.Close()

	nl, err := Compact(path, store)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	defer nl.Close()
	after, err := nl.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink: %d -> %d", len(before), len(after))
	}
	// Recovery from the compacted log reproduces the store.
	fresh := storage.NewStore()
	if _, err := Recover(fresh, nl); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if fresh.Len() != 50 {
		t.Fatalf("recovered %d keys, want 50", fresh.Len())
	}
	// And the compacted log still accepts appends with advancing LSNs.
	lsn, err := nl.Append(Record{Type: RecBegin, TxnID: "Tnew"})
	if err != nil || lsn == 0 {
		t.Fatalf("append after compact: lsn=%d err=%v", lsn, err)
	}
}
