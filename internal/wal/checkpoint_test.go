package wal

import (
	"fmt"
	"testing"

	"o2pc/internal/storage"
)

func TestCheckpointRecovery(t *testing.T) {
	l := NewMemoryLog()
	store := storage.NewStore()

	// Pre-checkpoint activity: T1 commits, T2 aborts.
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "a", "", "A", false),
		Record{Type: RecCommit, TxnID: "T1"},
		Record{Type: RecBegin, TxnID: "T2"},
		upd("T2", "junk", "", "J", false),
		Record{Type: RecAbort, TxnID: "T2"},
	)
	store.Put("a", storage.Value("A"), "T1")
	if _, err := WriteCheckpoint(l, store); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint activity: T3 commits, T4 in flight.
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T3"},
		upd("T3", "b", "", "B", false),
		Record{Type: RecCommit, TxnID: "T3"},
		Record{Type: RecBegin, TxnID: "T4"},
		upd("T4", "c", "", "C", false),
	)

	fresh := storage.NewStore()
	res, err := Recover(fresh, l)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec, err := fresh.Get("a"); err != nil || string(rec.Value) != "A" {
		t.Fatalf("checkpointed key lost: %v %v", rec, err)
	}
	if rec, err := fresh.Get("b"); err != nil || string(rec.Value) != "B" {
		t.Fatalf("post-checkpoint commit lost: %v %v", rec, err)
	}
	if _, err := fresh.Get("c"); !storage.IsNotFound(err) {
		t.Fatalf("loser survived")
	}
	if _, err := fresh.Get("junk"); !storage.IsNotFound(err) {
		t.Fatalf("pre-checkpoint aborted key resurrected")
	}
	// Pre-checkpoint transactions are not re-analyzed.
	for _, id := range res.Redone {
		if id == "T1" {
			t.Fatalf("pre-checkpoint txn replayed: %v", res.Redone)
		}
	}
}

func TestCheckpointPreservesWriterAttribution(t *testing.T) {
	l := NewMemoryLog()
	store := storage.NewStore()
	store.Put("x", storage.Value("v"), "CTT9")
	if _, err := WriteCheckpoint(l, store); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	fresh := storage.NewStore()
	if _, err := Recover(fresh, l); err != nil {
		t.Fatalf("recover: %v", err)
	}
	rec, _ := fresh.Get("x")
	if rec.Writer != "CTT9" {
		t.Fatalf("writer = %q, want CTT9 (reads-from attribution must survive checkpoints)", rec.Writer)
	}
}

func TestIncompleteCheckpointIgnored(t *testing.T) {
	l := NewMemoryLog()
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "a", "", "A", false),
		Record{Type: RecCommit, TxnID: "T1"},
		// Torn checkpoint: begin without end.
		Record{Type: RecCheckpoint, TxnID: ckptTxnID, Aux: ckptBegin},
	)
	fresh := storage.NewStore()
	if _, err := Recover(fresh, l); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec, err := fresh.Get("a"); err != nil || string(rec.Value) != "A" {
		t.Fatalf("torn checkpoint lost pre-history: %v %v", rec, err)
	}
}

func TestLastOfSeveralCheckpointsWins(t *testing.T) {
	l := NewMemoryLog()
	s1 := storage.NewStore()
	s1.Put("k", storage.Value("old"), "T1")
	if _, err := WriteCheckpoint(l, s1); err != nil {
		t.Fatalf("ckpt1: %v", err)
	}
	s2 := storage.NewStore()
	s2.Put("k", storage.Value("new"), "T2")
	if _, err := WriteCheckpoint(l, s2); err != nil {
		t.Fatalf("ckpt2: %v", err)
	}
	fresh := storage.NewStore()
	if _, err := Recover(fresh, l); err != nil {
		t.Fatalf("recover: %v", err)
	}
	rec, _ := fresh.Get("k")
	if string(rec.Value) != "new" {
		t.Fatalf("k = %q, want value from the last checkpoint", rec.Value)
	}
}

func TestCompactShrinksFileLog(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	store := storage.NewStore()
	for i := 0; i < 50; i++ {
		key := storage.Key(fmt.Sprintf("k%d", i))
		appendAll(t, l,
			Record{Type: RecBegin, TxnID: fmt.Sprintf("T%d", i)},
			upd(fmt.Sprintf("T%d", i), key, "", "v", false),
			Record{Type: RecCommit, TxnID: fmt.Sprintf("T%d", i)},
		)
		store.Put(key, storage.Value("v"), fmt.Sprintf("T%d", i))
	}
	_ = l.Sync()
	before, _ := l.Records()
	_ = l.Close()

	nl, err := Compact(path, store)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	defer nl.Close()
	after, err := nl.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink: %d -> %d", len(before), len(after))
	}
	// Recovery from the compacted log reproduces the store.
	fresh := storage.NewStore()
	if _, err := Recover(fresh, nl); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if fresh.Len() != 50 {
		t.Fatalf("recovered %d keys, want 50", fresh.Len())
	}
	// And the compacted log still accepts appends with advancing LSNs.
	lsn, err := nl.Append(Record{Type: RecBegin, TxnID: "Tnew"})
	if err != nil || lsn == 0 {
		t.Fatalf("append after compact: lsn=%d err=%v", lsn, err)
	}
}

// TestCheckpointRetainsExposedUndecided is the checkpoint x exposure
// contract: a checkpoint taken while a subtransaction is exposed but
// undecided must retain enough log — exposure payload, before-images,
// marking state — for the restarted site to resume the inquiry and
// compensate on an eventual ABORT.
func TestCheckpointRetainsExposedUndecided(t *testing.T) {
	l := NewMemoryLog()
	store := storage.NewStore()

	// T1 is an O2PC subtransaction: exposure logged ahead of the local
	// commit, no global decision yet; its lc mark is set (P2-style).
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "bal", "100", "90", true),
		Record{Type: RecExposed, TxnID: "T1", Aux: `{"coord":"c0"}`},
		Record{Type: RecCommit, TxnID: "T1"},
		Record{Type: RecMark, TxnID: "T1", Aux: MarkSetLC},
	)
	store.Put("bal", storage.Value("90"), "T1")
	if _, err := WriteCheckpoint(l, store); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Restart: the store comes back with the exposed commit applied...
	fresh := storage.NewStore()
	if _, err := Recover(fresh, l); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec, err := fresh.Get("bal"); err != nil || string(rec.Value) != "90" {
		t.Fatalf("exposed commit lost across checkpoint: %v %v", rec, err)
	}

	// ...and the replayed records still carry everything compensation
	// needs: the exposure payload, the before-image, and the lc mark.
	records, err := l.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	a := Analyze(Replay(records))
	if a.Exposed["T1"] != `{"coord":"c0"}` {
		t.Fatalf("exposure payload truncated by checkpoint: %q", a.Exposed["T1"])
	}
	if a.Status["T1"] != StatusCommitted {
		t.Fatalf("exposed status = %v, want committed", a.Status["T1"])
	}
	ups := a.Updates["T1"]
	if len(ups) != 1 || string(ups[0].Before.Value) != "100" || !ups[0].Before.Existed {
		t.Fatalf("before-image truncated by checkpoint: %+v", ups)
	}
	if !a.Marks[MarkSetLC]["T1"] {
		t.Fatalf("lc mark truncated by checkpoint: %v", a.Marks)
	}
}

// TestCheckpointDropsResolvedExposure: once the decision is logged (and,
// for ABORT, the compensating transaction completed), the next checkpoint
// owes the exposure nothing and CarryRecords returns only mark snapshots.
func TestCheckpointDropsResolvedExposure(t *testing.T) {
	exposed := func(decision string, compRecs ...Record) []Record {
		recs := []Record{
			{Type: RecBegin, TxnID: "T1"},
			upd("T1", "bal", "100", "90", true),
			{Type: RecExposed, TxnID: "T1", Aux: `{"coord":"c0"}`},
			{Type: RecCommit, TxnID: "T1"},
			{Type: RecDecision, TxnID: "T1", Aux: decision},
		}
		return append(recs, compRecs...)
	}

	if carry := CarryRecords(exposed("commit")); len(carry) != 0 {
		t.Fatalf("commit-decided exposure still carried: %+v", carry)
	}
	done := exposed("abort",
		Record{Type: RecCompBegin, TxnID: "CTT1", Aux: "T1"},
		upd("CTT1", "bal", "90", "100", true),
		Record{Type: RecCompEnd, TxnID: "CTT1"},
	)
	if carry := CarryRecords(done); len(carry) != 0 {
		t.Fatalf("fully compensated exposure still carried: %+v", carry)
	}

	// An ABORT whose compensation was interrupted (COMP-BEGIN without
	// COMP-END) must carry both the exposed records and the partial CT.
	interrupted := exposed("abort",
		Record{Type: RecCompBegin, TxnID: "CTT1", Aux: "T1"},
	)
	carry := CarryRecords(interrupted)
	carried := make(map[string]bool)
	for _, rec := range carry {
		carried[rec.TxnID] = true
	}
	if !carried["T1"] || !carried["CTT1"] {
		t.Fatalf("interrupted compensation dropped by checkpoint: carried %v", carried)
	}
}

// TestCheckpointSnapshotsMarks: marking sets outlive the transactions
// that created them, so checkpoints re-snapshot them as fresh RecMark
// records — and an unmark before the checkpoint means no record at all.
func TestCheckpointSnapshotsMarks(t *testing.T) {
	records := []Record{
		{Type: RecMark, TxnID: "T1", Aux: MarkSetUndone},
		{Type: RecMark, TxnID: "T2", Aux: MarkSetUndone},
		{Type: RecMark, TxnID: "T2", Aux: MarkSetLC},
		{Type: RecUnmark, TxnID: "T1", Aux: MarkSetUndone},
	}
	carry := CarryRecords(records)
	want := []Record{
		{Type: RecMark, TxnID: "T2", Aux: MarkSetLC},
		{Type: RecMark, TxnID: "T2", Aux: MarkSetUndone},
	}
	if len(carry) != len(want) {
		t.Fatalf("carried %+v, want %+v", carry, want)
	}
	for i := range want {
		if carry[i].Type != want[i].Type || carry[i].TxnID != want[i].TxnID || carry[i].Aux != want[i].Aux {
			t.Fatalf("carried %+v, want %+v", carry, want)
		}
	}

	// And across a real checkpoint + restart the marks replay intact.
	l := NewMemoryLog()
	appendAll(t, l, records...)
	if _, err := WriteCheckpoint(l, storage.NewStore()); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	a := Analyze(Replay(recs))
	if a.Marks[MarkSetUndone]["T1"] || !a.Marks[MarkSetUndone]["T2"] || !a.Marks[MarkSetLC]["T2"] {
		t.Fatalf("marks after checkpointed restart: %v", a.Marks)
	}
}
