package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"o2pc/internal/storage"
)

// Binary record layout (all integers big-endian):
//
//	uint32  payload length (bytes after this field, excluding CRC)
//	uint32  CRC-32 (IEEE) of the payload
//	payload:
//	  uint64 LSN
//	  uint8  type
//	  str    txnID
//	  image  before
//	  image  after
//	  str    aux
//
// where str is uint32 length + bytes, and image is:
//
//	uint8  flags (bit0 existed, bit1 deleted)
//	str    key
//	str    value
//	str    writer

func putString(buf []byte, s string) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s)))
	buf = append(buf, l[:]...)
	return append(buf, s...)
}

func putImage(buf []byte, img Image) []byte {
	var flags byte
	if img.Existed {
		flags |= 1
	}
	if img.Deleted {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = putString(buf, string(img.Key))
	buf = putString(buf, string(img.Value))
	return putString(buf, img.Writer)
}

// Marshal encodes rec into its binary representation including the length
// and CRC framing.
func Marshal(rec Record) []byte {
	payload := make([]byte, 0, 64)
	var lsn [8]byte
	binary.BigEndian.PutUint64(lsn[:], rec.LSN)
	payload = append(payload, lsn[:]...)
	payload = append(payload, byte(rec.Type))
	payload = putString(payload, rec.TxnID)
	payload = putImage(payload, rec.Before)
	payload = putImage(payload, rec.After)
	payload = putString(payload, rec.Aux)

	out := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remain() int { return len(d.buf) - d.off }

func (d *decoder) bytes(n int) ([]byte, error) {
	if d.remain() < n {
		return nil, fmt.Errorf("wal: truncated record: need %d bytes, have %d", n, d.remain())
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) uint64() (uint64, error) {
	b, err := d.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (d *decoder) byte() (byte, error) {
	b, err := d.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) string() (string, error) {
	lb, err := d.bytes(4)
	if err != nil {
		return "", err
	}
	n := int(binary.BigEndian.Uint32(lb))
	b, err := d.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *decoder) image() (Image, error) {
	flags, err := d.byte()
	if err != nil {
		return Image{}, err
	}
	key, err := d.string()
	if err != nil {
		return Image{}, err
	}
	val, err := d.string()
	if err != nil {
		return Image{}, err
	}
	writer, err := d.string()
	if err != nil {
		return Image{}, err
	}
	img := Image{
		Key:     storage.Key(key),
		Existed: flags&1 != 0,
		Deleted: flags&2 != 0,
		Writer:  writer,
	}
	if len(val) > 0 {
		img.Value = storage.Value(val)
	}
	return img, nil
}

// UnmarshalPayload decodes a record payload (without framing).
func UnmarshalPayload(payload []byte) (Record, error) {
	d := &decoder{buf: payload}
	var rec Record
	var err error
	if rec.LSN, err = d.uint64(); err != nil {
		return Record{}, err
	}
	t, err := d.byte()
	if err != nil {
		return Record{}, err
	}
	rec.Type = RecordType(t)
	if rec.TxnID, err = d.string(); err != nil {
		return Record{}, err
	}
	if rec.Before, err = d.image(); err != nil {
		return Record{}, err
	}
	if rec.After, err = d.image(); err != nil {
		return Record{}, err
	}
	if rec.Aux, err = d.string(); err != nil {
		return Record{}, err
	}
	if d.remain() != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes in record payload", d.remain())
	}
	return rec, nil
}

// WriteRecord marshals rec and writes it to w.
func WriteRecord(w io.Writer, rec Record) error {
	_, err := w.Write(Marshal(rec))
	return err
}

// ReadRecord reads the next framed record from r. It returns io.EOF cleanly
// at the end of the stream, and io.ErrUnexpectedEOF for a torn final record
// (which recovery treats as the end of the durable log).
func ReadRecord(r io.Reader) (Record, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return Record{}, err
	}
	n := binary.BigEndian.Uint32(head[0:4])
	want := binary.BigEndian.Uint32(head[4:8])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return Record{}, fmt.Errorf("wal: CRC mismatch: got %08x want %08x", got, want)
	}
	return UnmarshalPayload(payload)
}

// ReadAll decodes records from r until EOF. A torn trailing record is
// silently dropped, mirroring standard WAL recovery semantics.
func ReadAll(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var out []Record
	for {
		rec, err := ReadRecord(br)
		if err == io.EOF {
			return out, nil
		}
		if err == io.ErrUnexpectedEOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
