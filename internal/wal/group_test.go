package wal

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"o2pc/internal/sim"
)

// countingSyncLog wraps a Log and counts physical Sync calls, optionally
// forcing them to fail.
type countingSyncLog struct {
	Log
	syncs   atomic.Int64
	syncErr error
}

func (c *countingSyncLog) Sync() error {
	c.syncs.Add(1)
	if c.syncErr != nil {
		return c.syncErr
	}
	return c.Log.Sync()
}

// TestGroupCommitCoalescesRealClock is the headline group-commit property:
// K concurrent committers cost far fewer than K physical syncs. The batch
// is made deterministic by setting MaxBatch = K: the last committer to
// enqueue flushes the whole batch inline, so stragglers cannot split it
// into per-caller syncs.
func TestGroupCommitCoalescesRealClock(t *testing.T) {
	const K = 64
	inner := &countingSyncLog{Log: NewMemoryLog()}
	g := NewGroupCommitLog(inner, GroupCommitConfig{
		Window:   25 * time.Millisecond,
		MaxBatch: K,
	})

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		i := i
		go func() {
			defer done.Done()
			start.Wait()
			if _, err := g.Append(Record{Type: RecBegin, TxnID: "T"}); err != nil {
				errs[i] = err
				return
			}
			errs[i] = g.Sync()
		}()
	}
	start.Done()
	done.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	if n := inner.syncs.Load(); n < 1 || n > K/4 {
		t.Fatalf("physical syncs = %d for %d committers, want 1..%d", n, K, K/4)
	}
	if got := g.Stats().Syncs.Value(); got != inner.syncs.Load() {
		t.Fatalf("stats syncs = %d, inner = %d", got, inner.syncs.Load())
	}
}

// TestGroupCommitVirtualDeterministic runs the same staggered-committer
// schedule twice under virtual clocks and requires identical batching:
// same physical sync count, same flush sizes, same virtual elapsed time.
func TestGroupCommitVirtualDeterministic(t *testing.T) {
	type outcome struct {
		syncs   int64
		flushes []int
		elapsed time.Duration
	}
	run := func() outcome {
		clock := sim.NewVirtualClock()
		var flushes []int
		var fmu sync.Mutex
		inner := &countingSyncLog{Log: NewMemoryLog()}
		g := NewGroupCommitLog(inner, GroupCommitConfig{
			Window:   100 * time.Microsecond,
			MaxBatch: 1 << 20,
			Clock:    clock,
			OnFlush: func(batch int) {
				fmu.Lock()
				flushes = append(flushes, batch)
				fmu.Unlock()
			},
		})
		const K = 32
		grp := sim.NewGroup(clock)
		for i := 0; i < K; i++ {
			i := i
			grp.Go(func() {
				_ = clock.Sleep(context.Background(), time.Duration(i+1)*time.Microsecond)
				if _, err := g.Append(Record{Type: RecBegin, TxnID: "T"}); err != nil {
					t.Errorf("append: %v", err)
				}
				if err := g.Sync(); err != nil {
					t.Errorf("sync: %v", err)
				}
			})
		}
		grp.Wait()
		return outcome{syncs: inner.syncs.Load(), flushes: flushes, elapsed: clock.Elapsed()}
	}

	a, b := run(), run()
	if a.syncs != b.syncs || a.elapsed != b.elapsed || len(a.flushes) != len(b.flushes) {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
	for i := range a.flushes {
		if a.flushes[i] != b.flushes[i] {
			t.Fatalf("flush %d differs: %v vs %v", i, a.flushes, b.flushes)
		}
	}
	// All 32 committers arrive within 32µs of each other; the 100µs window
	// opened by the first must cover every one of them in a single flush.
	if a.syncs != 1 || len(a.flushes) != 1 || a.flushes[0] != 32 {
		t.Fatalf("syncs = %d flushes = %v, want one flush of 32", a.syncs, a.flushes)
	}
}

// TestGroupCommitMaxBatchFlushesImmediately checks that a full batch does
// not wait out the window: with MaxBatch committers queued the flush
// happens inline, so virtual time never advances to the window deadline.
func TestGroupCommitMaxBatchFlushesImmediately(t *testing.T) {
	clock := sim.NewVirtualClock()
	inner := &countingSyncLog{Log: NewMemoryLog()}
	g := NewGroupCommitLog(inner, GroupCommitConfig{
		Window:   time.Hour,
		MaxBatch: 4,
		Clock:    clock,
	})
	grp := sim.NewGroup(clock)
	for i := 0; i < 4; i++ {
		i := i
		grp.Go(func() {
			_ = clock.Sleep(context.Background(), time.Duration(i+1)*time.Microsecond)
			if err := g.Sync(); err != nil {
				t.Errorf("sync: %v", err)
			}
		})
	}
	grp.Wait()
	if inner.syncs.Load() != 1 {
		t.Fatalf("syncs = %d, want 1", inner.syncs.Load())
	}
	if el := clock.Elapsed(); el >= time.Hour {
		t.Fatalf("elapsed %v: batch waited out the window", el)
	}
}

// TestGroupCommitSyncErrorFansOut checks that a failed physical sync is
// reported to every committer in the batch, not just the one that
// triggered the flush.
func TestGroupCommitSyncErrorFansOut(t *testing.T) {
	boom := errors.New("disk on fire")
	clock := sim.NewVirtualClock()
	inner := &countingSyncLog{Log: NewMemoryLog(), syncErr: boom}
	g := NewGroupCommitLog(inner, GroupCommitConfig{
		Window:   50 * time.Microsecond,
		MaxBatch: 1 << 20,
		Clock:    clock,
	})
	const K = 3
	errs := make([]error, K)
	grp := sim.NewGroup(clock)
	for i := 0; i < K; i++ {
		i := i
		grp.Go(func() {
			_ = clock.Sleep(context.Background(), time.Duration(i+1)*time.Microsecond)
			errs[i] = g.Sync()
		})
	}
	grp.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("committer %d: err = %v, want %v", i, err, boom)
		}
	}
	if inner.syncs.Load() != 1 {
		t.Fatalf("syncs = %d, want 1", inner.syncs.Load())
	}
}

// TestGroupCommitCloseFlushesWaiters checks that Close releases queued
// committers with a final flush instead of stranding them, and that Sync
// after Close reports ErrClosed.
func TestGroupCommitCloseFlushesWaiters(t *testing.T) {
	inner := &countingSyncLog{Log: NewMemoryLog()}
	g := NewGroupCommitLog(inner, GroupCommitConfig{
		Window:   time.Hour, // the window never elapses; only Close can flush
		MaxBatch: 1 << 20,
	})
	done := make(chan error, 1)
	go func() { done <- g.Sync() }()
	// Wait until the committer is actually queued before closing.
	for {
		g.mu.Lock()
		n := len(g.waiters)
		g.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued sync after close: %v", err)
	}
	if inner.syncs.Load() != 1 {
		t.Fatalf("syncs = %d, want 1", inner.syncs.Load())
	}
	if err := g.Sync(); err != ErrClosed {
		t.Fatalf("sync on closed log: %v, want ErrClosed", err)
	}
}

// TestGroupCommitAppendPassThrough checks that the decorator leaves record
// order and LSN assignment entirely to the inner log.
func TestGroupCommitAppendPassThrough(t *testing.T) {
	inner := NewMemoryLog()
	g := NewGroupCommitLog(inner, GroupCommitConfig{})
	if g.Inner() != Log(inner) {
		t.Fatalf("Inner() is not the wrapped log")
	}
	for i := 1; i <= 3; i++ {
		lsn, err := g.Append(Record{Type: RecBegin, TxnID: "T"})
		if err != nil || lsn != uint64(i) {
			t.Fatalf("append %d: lsn=%d err=%v", i, lsn, err)
		}
	}
	recs, err := g.Records()
	if err != nil || len(recs) != 3 {
		t.Fatalf("records: n=%d err=%v", len(recs), err)
	}
}
