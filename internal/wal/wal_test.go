package wal

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"o2pc/internal/storage"
)

func upd(txn string, key storage.Key, before, after string, existed bool) Record {
	rec := Record{
		Type:  RecUpdate,
		TxnID: txn,
		Before: Image{
			Key: key, Value: storage.Value(before),
			Existed: existed, Writer: "w0",
		},
		After: Image{Key: key, Value: storage.Value(after), Existed: true, Writer: txn},
	}
	if before == "" {
		rec.Before.Value = nil
	}
	return rec
}

func TestMemoryLogAppendAssignsLSNs(t *testing.T) {
	l := NewMemoryLog()
	for i := 1; i <= 3; i++ {
		lsn, err := l.Append(Record{Type: RecBegin, TxnID: "T1"})
		if err != nil || lsn != uint64(i) {
			t.Fatalf("append %d: lsn=%d err=%v", i, lsn, err)
		}
	}
	recs, _ := l.Records()
	if len(recs) != 3 || recs[2].LSN != 3 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestMemoryLogClosed(t *testing.T) {
	l := NewMemoryLog()
	_ = l.Close()
	if _, err := l.Append(Record{}); err != ErrClosed {
		t.Fatalf("append on closed: %v", err)
	}
	if _, err := l.Records(); err != ErrClosed {
		t.Fatalf("records on closed: %v", err)
	}
}

func TestAnalyzeStatuses(t *testing.T) {
	recs := []Record{
		{Type: RecBegin, TxnID: "T1"},
		upd("T1", "a", "", "1", false),
		{Type: RecCommit, TxnID: "T1"},
		{Type: RecBegin, TxnID: "T2"},
		upd("T2", "b", "", "2", false),
		{Type: RecPrepared, TxnID: "T2"},
		{Type: RecBegin, TxnID: "T3"},
		{Type: RecBegin, TxnID: "T4"},
		upd("T4", "c", "", "4", false),
		{Type: RecAbort, TxnID: "T4"},
		{Type: RecCompBegin, TxnID: "CT5", Aux: "T5"},
		{Type: RecCompEnd, TxnID: "CT5"},
	}
	a := Analyze(recs)
	want := map[string]TxnStatus{
		"T1": StatusCommitted, "T2": StatusPrepared, "T3": StatusActive,
		"T4": StatusAborted, "CT5": StatusCommitted,
	}
	for id, st := range want {
		if a.Status[id] != st {
			t.Errorf("status[%s] = %v, want %v", id, a.Status[id], st)
		}
	}
	if len(a.Updates["T1"]) != 1 || len(a.Updates["T4"]) != 1 {
		t.Errorf("updates = %+v", a.Updates)
	}
}

func TestAnalyzeDecisions(t *testing.T) {
	a := Analyze([]Record{
		{Type: RecPrepared, TxnID: "T1"},
		{Type: RecDecision, TxnID: "T1", Aux: "commit"},
	})
	if a.Decisions["T1"] != "commit" {
		t.Fatalf("decision = %q", a.Decisions["T1"])
	}
}

func TestApplyUndoRestoresReverseOrder(t *testing.T) {
	store := storage.NewStore()
	store.Put("a", storage.Value("init"), "T0")
	// T1 writes a twice; undo must restore "init", not the intermediate.
	u1 := Record{Type: RecUpdate, TxnID: "T1",
		Before: Image{Key: "a", Value: storage.Value("init"), Existed: true, Writer: "T0"},
		After:  Image{Key: "a", Value: storage.Value("mid"), Existed: true, Writer: "T1"}}
	u2 := Record{Type: RecUpdate, TxnID: "T1",
		Before: Image{Key: "a", Value: storage.Value("mid"), Existed: true, Writer: "T1"},
		After:  Image{Key: "a", Value: storage.Value("fin"), Existed: true, Writer: "T1"}}
	store.Put("a", storage.Value("mid"), "T1")
	store.Put("a", storage.Value("fin"), "T1")

	ApplyUndo(store, []Record{u1, u2}, "CTT1")
	rec, _ := store.Get("a")
	if string(rec.Value) != "init" {
		t.Fatalf("value = %q, want init", rec.Value)
	}
	if rec.Writer != "CTT1" {
		t.Fatalf("writer = %q, want CTT1", rec.Writer)
	}
}

func TestApplyUndoPreservesOriginalWriterWhenUnattributed(t *testing.T) {
	store := storage.NewStore()
	store.Put("a", storage.Value("v2"), "L9")
	u := Record{Type: RecUpdate, TxnID: "L9",
		Before: Image{Key: "a", Value: storage.Value("v1"), Existed: true, Writer: "T7"},
		After:  Image{Key: "a", Value: storage.Value("v2"), Existed: true, Writer: "L9"}}
	ApplyUndo(store, []Record{u}, "")
	rec, _ := store.Get("a")
	if rec.Writer != "T7" {
		t.Fatalf("writer = %q, want original T7", rec.Writer)
	}
}

func TestApplyUndoRemovesInsertedKey(t *testing.T) {
	store := storage.NewStore()
	store.Put("new", storage.Value("v"), "T1")
	u := upd("T1", "new", "", "v", false)
	ApplyUndo(store, []Record{u}, "CT1")
	if _, ok := store.GetAny("new"); ok {
		t.Fatalf("inserted key not removed by undo")
	}
}

func TestRecoverRedoesCommittedUndoesLosers(t *testing.T) {
	l := NewMemoryLog()
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "a", "", "A", false),
		Record{Type: RecCommit, TxnID: "T1"},
		Record{Type: RecBegin, TxnID: "T2"},
		upd("T2", "b", "", "B", false),
		// T2 crashed mid-flight: no terminal record.
	)
	store := storage.NewStore()
	res, err := Recover(store, l)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(res.Redone) != 1 || res.Redone[0] != "T1" {
		t.Fatalf("redone = %v", res.Redone)
	}
	if len(res.Undone) != 1 || res.Undone[0] != "T2" {
		t.Fatalf("undone = %v", res.Undone)
	}
	if rec, err := store.Get("a"); err != nil || string(rec.Value) != "A" {
		t.Fatalf("a = %v (%v)", rec, err)
	}
	if _, err := store.Get("b"); !storage.IsNotFound(err) {
		t.Fatalf("loser's write survived recovery")
	}
}

func TestRecoverInDoubtStaysApplied(t *testing.T) {
	l := NewMemoryLog()
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "a", "", "A", false),
		Record{Type: RecPrepared, TxnID: "T1"},
	)
	store := storage.NewStore()
	res, err := Recover(store, l)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0] != "T1" {
		t.Fatalf("in-doubt = %v", res.InDoubt)
	}
	if rec, err := store.Get("a"); err != nil || string(rec.Value) != "A" {
		t.Fatalf("in-doubt effects lost: %v (%v)", rec, err)
	}
}

func TestRecoverPreparedWithDecision(t *testing.T) {
	for _, tc := range []struct {
		decision string
		wantA    bool
	}{{"commit", true}, {"abort", false}} {
		l := NewMemoryLog()
		appendAll(t, l,
			Record{Type: RecBegin, TxnID: "T1"},
			upd("T1", "a", "", "A", false),
			Record{Type: RecPrepared, TxnID: "T1"},
			Record{Type: RecDecision, TxnID: "T1", Aux: tc.decision},
		)
		store := storage.NewStore()
		res, err := Recover(store, l)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if len(res.InDoubt) != 0 {
			t.Fatalf("%s: still in doubt", tc.decision)
		}
		_, err = store.Get("a")
		if tc.wantA && err != nil {
			t.Fatalf("commit decision lost the write")
		}
		if !tc.wantA && !storage.IsNotFound(err) {
			t.Fatalf("abort decision kept the write")
		}
	}
}

func TestRecoverAbortedTxnStaysUndone(t *testing.T) {
	l := NewMemoryLog()
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "a", "", "A", false),
		Record{Type: RecAbort, TxnID: "T1"},
	)
	store := storage.NewStore()
	if _, err := Recover(store, l); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if _, err := store.Get("a"); !storage.IsNotFound(err) {
		t.Fatalf("aborted txn's write resurrected by recovery")
	}
}

// TestRecoverAbortThenLaterCommitSameKey pins the undo ordering of
// crash recovery: T2 updates a key, rolls back live (ABORT logged after
// the before-images were restored, locks released after that), and T4
// then writes the same key and commits — all before the crash. T2's undo
// must replay at its ABORT record's log position, not after the redo
// pass, or it re-installs T2's stale before-image on top of T4's
// committed write (the seed-107 conservation violation found by the
// explorer: an aborted 2PC transfer's undo erased a later committed
// O2PC transfer on the same account).
func TestRecoverAbortThenLaterCommitSameKey(t *testing.T) {
	l := NewMemoryLog()
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T2"},
		Record{Type: RecUpdate, TxnID: "T2",
			Before: Image{Key: "acct", Value: storage.Value("1000"), Existed: true, Writer: "init"},
			After:  Image{Key: "acct", Value: storage.Value("993"), Existed: true, Writer: "T2"}},
		Record{Type: RecDecision, TxnID: "T2", Aux: "abort"},
		Record{Type: RecAbort, TxnID: "T2"},
		// T4 locks the key only after T2's roll-back released it, so its
		// before-image already reflects the restored value.
		Record{Type: RecBegin, TxnID: "T4"},
		Record{Type: RecUpdate, TxnID: "T4",
			Before: Image{Key: "acct", Value: storage.Value("1000"), Existed: true, Writer: "init"},
			After:  Image{Key: "acct", Value: storage.Value("1009"), Existed: true, Writer: "T4"}},
		Record{Type: RecExposed, TxnID: "T4", Aux: `{"coord":"c0"}`},
		Record{Type: RecCommit, TxnID: "T4"},
		Record{Type: RecDecision, TxnID: "T4", Aux: "commit"},
	)
	store := storage.NewStore()
	res, err := Recover(store, l)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(res.Undone) != 1 || res.Undone[0] != "T2" {
		t.Fatalf("undone = %v, want [T2]", res.Undone)
	}
	rec, err := store.Get("acct")
	if err != nil {
		t.Fatalf("acct: %v", err)
	}
	if string(rec.Value) != "1009" || rec.Writer != "T4" {
		t.Fatalf("acct = %q by %q, want 1009 by T4 (aborted T2's undo clobbered the later committed write)", rec.Value, rec.Writer)
	}
}

// TestRecoverAbortAttributionMatchesLiveRollback pins that recovery
// replays an ABORT record's undo with the attribution the live roll-back
// logged in Aux: a compensating-transaction ID re-attributes the restored
// version (so post-recovery readers read-from the compensation, as live
// readers did), while an empty Aux preserves the original writer.
func TestRecoverAbortAttributionMatchesLiveRollback(t *testing.T) {
	for _, tc := range []struct {
		aux        string
		wantWriter string
	}{{"CTT1", "CTT1"}, {"", "init"}} {
		l := NewMemoryLog()
		appendAll(t, l,
			Record{Type: RecBegin, TxnID: "T1"},
			Record{Type: RecUpdate, TxnID: "T1",
				Before: Image{Key: "a", Value: storage.Value("v0"), Existed: true, Writer: "init"},
				After:  Image{Key: "a", Value: storage.Value("v1"), Existed: true, Writer: "T1"}},
			Record{Type: RecAbort, TxnID: "T1", Aux: tc.aux},
		)
		store := storage.NewStore()
		if _, err := Recover(store, l); err != nil {
			t.Fatalf("recover: %v", err)
		}
		rec, err := store.Get("a")
		if err != nil {
			t.Fatalf("aux=%q: %v", tc.aux, err)
		}
		if string(rec.Value) != "v0" || rec.Writer != tc.wantWriter {
			t.Fatalf("aux=%q: a = %q by %q, want v0 by %q", tc.aux, rec.Value, rec.Writer, tc.wantWriter)
		}
	}
}

func appendAll(t *testing.T, l Log, recs ...Record) {
	t.Helper()
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	rec := Record{
		LSN:   42,
		Type:  RecUpdate,
		TxnID: "T17",
		Before: Image{Key: "key/α", Value: storage.Value{0, 1, 2, 255},
			Existed: true, Deleted: false, Writer: "T3"},
		After: Image{Key: "key/α", Value: nil, Existed: true, Deleted: true, Writer: "T17"},
		Aux:   "commit",
	}
	buf := Marshal(rec)
	got, err := ReadRecord(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("roundtrip mismatch:\n  in:  %+v\n  out: %+v", rec, got)
	}
}

// TestMarshalRecoveryRecordsRoundTrip pins the encoding of the recovery
// record types PR 5 introduced: exposure (with its JSON payload in Aux)
// and the marking-set mutations.
func TestMarshalRecoveryRecordsRoundTrip(t *testing.T) {
	for _, rec := range []Record{
		{LSN: 7, Type: RecExposed, TxnID: "T3", Aux: `{"coord":"c1","req":{"txn_id":"T3"}}`},
		{LSN: 8, Type: RecMark, TxnID: "T3", Aux: MarkSetUndone},
		{LSN: 9, Type: RecUnmark, TxnID: "T3", Aux: MarkSetUndone},
		{LSN: 10, Type: RecMark, TxnID: "T4", Aux: MarkSetLC},
	} {
		got, err := ReadRecord(bytes.NewReader(Marshal(rec)))
		if err != nil {
			t.Fatalf("%v: read: %v", rec.Type, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("roundtrip mismatch:\n  in:  %+v\n  out: %+v", rec, got)
		}
		if got.Type.String() == "" || got.Type.String()[0] == 'R' {
			t.Fatalf("%v: missing String() case: %q", rec.Type, got.Type.String())
		}
	}
}

func TestEncodingQuick(t *testing.T) {
	f := func(lsn uint64, typ uint8, txn, key, val, writer, aux string, existed, deleted bool) bool {
		rec := Record{
			LSN:   lsn,
			Type:  RecordType(typ%12 + 1), // all record types through RecUnmark
			TxnID: txn,
			Before: Image{Key: storage.Key(key), Existed: existed,
				Deleted: deleted, Writer: writer},
			Aux: aux,
		}
		if len(val) > 0 {
			rec.Before.Value = storage.Value(val)
		}
		got, err := ReadRecord(bytes.NewReader(Marshal(rec)))
		return err == nil && reflect.DeepEqual(rec, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAllTornTail(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(Marshal(Record{LSN: 1, Type: RecBegin, TxnID: "T1"}))
	torn := Marshal(Record{LSN: 2, Type: RecCommit, TxnID: "T1"})
	buf.Write(torn[:len(torn)-3]) // torn final record

	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != 1 || recs[0].TxnID != "T1" || recs[0].Type != RecBegin {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestReadRecordCRCMismatch(t *testing.T) {
	buf := Marshal(Record{LSN: 1, Type: RecBegin, TxnID: "T1"})
	buf[len(buf)-1] ^= 0xFF
	if _, err := ReadRecord(bytes.NewReader(buf)); err == nil {
		t.Fatalf("corrupted record accepted")
	}
}

func TestRecordTypeStrings(t *testing.T) {
	for ty, want := range map[RecordType]string{
		RecBegin: "BEGIN", RecUpdate: "UPDATE", RecCommit: "COMMIT",
		RecAbort: "ABORT", RecPrepared: "PREPARED", RecDecision: "DECISION",
		RecCompBegin: "COMP-BEGIN", RecCompEnd: "COMP-END", RecCheckpoint: "CHECKPOINT",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if TxnStatus(99).String() == "" || RecordType(99).String() == "" {
		t.Errorf("unknown values must still render")
	}
}

func TestFileLogPersistence(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "a", "", "A", false),
		Record{Type: RecCommit, TxnID: "T1"},
	)
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	if len(recs) != 3 || recs[2].Type != RecCommit {
		t.Fatalf("recs = %+v", recs)
	}
	// LSNs continue after reopen.
	lsn, err := l2.Append(Record{Type: RecBegin, TxnID: "T2"})
	if err != nil || lsn != 4 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestFileLogRecoverEndToEnd(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAll(t, l,
		Record{Type: RecBegin, TxnID: "T1"},
		upd("T1", "x", "", "X", false),
		Record{Type: RecCommit, TxnID: "T1"},
		Record{Type: RecBegin, TxnID: "T2"},
		upd("T2", "y", "", "Y", false),
	)
	_ = l.Sync()
	_ = l.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	store := storage.NewStore()
	res, err := Recover(store, l2)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(res.Redone) != 1 || len(res.Undone) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if _, err := store.Get("x"); err != nil {
		t.Fatalf("committed write lost across file reopen")
	}
	if _, err := store.Get("y"); !storage.IsNotFound(err) {
		t.Fatalf("loser write survived across file reopen")
	}
}
