// Package wal implements a write-ahead log with undo/redo recovery for the
// per-site transaction managers.
//
// The log is the substrate behind "standard roll-back recovery" in the
// paper's terminology: a site that votes NO on a global transaction undoes
// the local subtransaction from the log (Section 3.2 models this roll-back
// as a degenerate compensating subtransaction). The log also persists the
// participant's 2PC state transitions (PREPARED, COMMIT, ABORT decisions) so
// that in-doubt transactions survive a site crash in the baseline protocol.
//
// Records are encoded in a simple length-prefixed binary format built on
// encoding/binary; both an in-memory log (for simulations) and a file-backed
// log (for the multi-process deployment) are provided.
package wal

import (
	"errors"
	"fmt"
	"sync"

	"o2pc/internal/storage"
)

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	// RecBegin marks the start of a transaction.
	RecBegin RecordType = iota + 1
	// RecUpdate carries a before-image and an after-image of one key.
	RecUpdate
	// RecCommit marks a locally committed transaction.
	RecCommit
	// RecAbort marks an aborted (and already undone) transaction.
	RecAbort
	// RecPrepared marks a participant's YES vote in a commit protocol.
	RecPrepared
	// RecDecision records the coordinator's final decision as observed by
	// the participant ("commit" or "abort" payload in Aux).
	RecDecision
	// RecCompBegin marks the start of a compensating transaction for the
	// forward transaction named in TxnID.
	RecCompBegin
	// RecCompEnd marks the completion of a compensating transaction.
	RecCompEnd
	// RecCheckpoint carries a serialized snapshot boundary marker.
	RecCheckpoint
	// RecExposed marks an O2PC subtransaction that locally committed and
	// released its locks before the global decision (the paper's "exposure"
	// point). Aux carries the compensation context the restarted site needs
	// to resume the decision inquiry and, on ABORT, run the compensating
	// subtransaction: the coordinator name and the original request
	// (operations, compensation mode, marking protocol). Per Theorem 2 the
	// record must be durable before the locks are released.
	RecExposed
	// RecMark records the addition of a transaction to a marking set
	// (MarkSetUndone or MarkSetLC in Aux). Written write-ahead of the
	// in-memory mutation so the sitemarks.k sets survive a site crash.
	RecMark
	// RecUnmark records the removal of a transaction from a marking set.
	RecUnmark
	// RecTerm records a decision-log replica's promised term for one
	// coordinator group (Aux "group|term"). A replica nacks every ballot
	// below its promised term, so the record must be durable before the
	// promise is answered.
	RecTerm
	// RecAccept records a decision value accepted by a decision-log replica
	// at a ballot (Aux "commit|term" or "abort|term" for the transaction in
	// TxnID). Durable before the accept is acked: a majority of these
	// records IS the replicated decision.
	RecAccept
)

// Marking-set labels carried in the Aux field of RecMark/RecUnmark records.
// They name the paper's two per-site sets: the undone marks of marking
// protocols P1/P2/Simple, and the locally-committed-undecided (lc) marks of
// P2/Simple.
const (
	MarkSetUndone = "undone"
	MarkSetLC     = "lc"
)

// String returns the record type mnemonic.
func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecPrepared:
		return "PREPARED"
	case RecDecision:
		return "DECISION"
	case RecCompBegin:
		return "COMP-BEGIN"
	case RecCompEnd:
		return "COMP-END"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecExposed:
		return "EXPOSED"
	case RecMark:
		return "MARK"
	case RecUnmark:
		return "UNMARK"
	case RecTerm:
		return "TERM"
	case RecAccept:
		return "ACCEPT"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Image captures the state of one key at a point in time, including whether
// the key existed at all (Existed=false means "absent before this write").
type Image struct {
	Key     storage.Key
	Value   storage.Value
	Deleted bool
	Existed bool
	// Writer is the transaction that installed this version; undo uses it
	// to preserve reads-from attribution when restoring before-images.
	Writer string
}

// ImageOf converts a storage lookup result into an Image.
func ImageOf(rec storage.Record, existed bool) Image {
	return Image{
		Key:     rec.Key,
		Value:   append(storage.Value(nil), rec.Value...),
		Deleted: rec.Deleted,
		Existed: existed,
		Writer:  rec.Writer,
	}
}

// Record is a single WAL entry.
type Record struct {
	LSN    uint64
	Type   RecordType
	TxnID  string
	Before Image  // valid for RecUpdate
	After  Image  // valid for RecUpdate
	Aux    string // free-form payload (decision outcome, checkpoint tag, ...)
}

// Log is the append-only record sink.
type Log interface {
	// Append writes rec (assigning its LSN) and returns the assigned LSN.
	Append(rec Record) (uint64, error)
	// Records returns a copy of all records in LSN order.
	Records() ([]Record, error)
	// Sync flushes buffered records to stable storage (no-op in memory).
	Sync() error
	// Close releases resources held by the log.
	Close() error
}

// memSegmentSize is the record capacity of one MemoryLog segment. Segments
// keep Append at a bounded allocation cost: a flat []Record doubles its
// backing array as the log grows, and on a long run the allocator spends
// more time zeroing and copying multi-megabyte slabs (and the GC rescanning
// them) than the rest of the commit path combined. With fixed-size segments
// nothing is ever copied and no allocation exceeds one segment.
const memSegmentSize = 1024

// MemoryLog is an in-memory Log used by simulations and tests.
type MemoryLog struct {
	mu      sync.Mutex
	segs    [][]Record // all but the last are exactly memSegmentSize long
	count   int
	nextLSN uint64
	closed  bool
}

// NewMemoryLog returns an empty in-memory log.
func NewMemoryLog() *MemoryLog { return &MemoryLog{nextLSN: 1} }

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Append implements Log.
func (l *MemoryLog) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	if n := len(l.segs); n == 0 || len(l.segs[n-1]) == memSegmentSize {
		l.segs = append(l.segs, make([]Record, 0, memSegmentSize))
	}
	last := len(l.segs) - 1
	l.segs[last] = append(l.segs[last], rec)
	l.count++
	return rec.LSN, nil
}

// Records implements Log.
func (l *MemoryLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	out := make([]Record, 0, l.count)
	for _, seg := range l.segs {
		out = append(out, seg...)
	}
	return out, nil
}

// Sync implements Log (a no-op for memory logs).
func (l *MemoryLog) Sync() error { return nil }

// Close implements Log.
func (l *MemoryLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// Len returns the number of records currently in the log.
func (l *MemoryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// TxnStatus summarizes one transaction's fate as recorded in a log.
type TxnStatus uint8

const (
	// StatusActive means the transaction began but has no terminal record.
	StatusActive TxnStatus = iota
	// StatusPrepared means the participant voted YES and awaits a decision.
	StatusPrepared
	// StatusCommitted means a COMMIT record exists.
	StatusCommitted
	// StatusAborted means an ABORT record exists.
	StatusAborted
)

// String returns the status mnemonic.
func (s TxnStatus) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusPrepared:
		return "prepared"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("TxnStatus(%d)", uint8(s))
	}
}

// Analysis is the result of scanning a log.
type Analysis struct {
	// Status maps transaction ID to its last observed status.
	Status map[string]TxnStatus
	// Updates maps transaction ID to its update records in log order.
	Updates map[string][]Record
	// Decisions maps transaction ID to the recorded coordinator outcome
	// ("commit" or "abort"), if a RecDecision record exists.
	Decisions map[string]string
	// Exposed maps transaction ID to the Aux payload of its RecExposed
	// record: the subtransaction locally committed and released its locks
	// before the global decision. Whether it is still undecided is read off
	// Decisions.
	Exposed map[string]string
	// Marks replays RecMark/RecUnmark in log order per marking set: for
	// each set label (MarkSetUndone, MarkSetLC) the transactions currently
	// marked.
	Marks map[string]map[string]bool
	// CompForward maps a compensating transaction's ID to the forward
	// transaction it compensates (the Aux of its RecCompBegin record).
	CompForward map[string]string
}

// CompensationComplete reports whether a compensating transaction for
// forward ran to completion in this analysis (COMP-BEGIN naming forward,
// with the compensating transaction's own status committed via COMP-END).
func (a Analysis) CompensationComplete(forward string) bool {
	for ct, f := range a.CompForward {
		if f == forward && a.Status[ct] == StatusCommitted {
			return true
		}
	}
	return false
}

// Analyze scans all records and classifies every transaction that appears.
func Analyze(records []Record) Analysis {
	a := Analysis{
		Status:      make(map[string]TxnStatus),
		Updates:     make(map[string][]Record),
		Decisions:   make(map[string]string),
		Exposed:     make(map[string]string),
		Marks:       make(map[string]map[string]bool),
		CompForward: make(map[string]string),
	}
	for _, rec := range records {
		switch rec.Type {
		case RecBegin:
			a.Status[rec.TxnID] = StatusActive
		case RecCompBegin:
			a.Status[rec.TxnID] = StatusActive
			if rec.Aux != "" {
				a.CompForward[rec.TxnID] = rec.Aux
			}
		case RecUpdate:
			a.Updates[rec.TxnID] = append(a.Updates[rec.TxnID], rec)
			if _, ok := a.Status[rec.TxnID]; !ok {
				a.Status[rec.TxnID] = StatusActive
			}
		case RecPrepared:
			a.Status[rec.TxnID] = StatusPrepared
		case RecCommit, RecCompEnd:
			a.Status[rec.TxnID] = StatusCommitted
		case RecAbort:
			a.Status[rec.TxnID] = StatusAborted
		case RecDecision:
			a.Decisions[rec.TxnID] = rec.Aux
		case RecExposed:
			a.Exposed[rec.TxnID] = rec.Aux
		case RecMark:
			set := a.Marks[rec.Aux]
			if set == nil {
				set = make(map[string]bool)
				a.Marks[rec.Aux] = set
			}
			set[rec.TxnID] = true
		case RecUnmark:
			delete(a.Marks[rec.Aux], rec.TxnID)
		case RecCheckpoint:
			// Checkpoint brackets carry no transaction state; Recover
			// consumes them via lastCheckpoint before analysis.
		case RecTerm, RecAccept:
			// Replication acceptor state (internal/replog) is rebuilt by the
			// replica itself; it carries no local-transaction status.
		}
	}
	return a
}

// ApplyUndo reverts txn's updates against store by re-installing before
// images in reverse log order. If undoneBy is non-empty the restored
// versions are attributed to that writer (conventionally "CT<txn>", per the
// paper's modeling of roll-back as a compensating transaction, so that
// later readers read-from the compensation); if undoneBy is empty each
// before-image's original writer is preserved (aborted local transactions
// simply vanish from the committed projection).
func ApplyUndo(store *storage.Store, updates []Record, undoneBy string) {
	for i := len(updates) - 1; i >= 0; i-- {
		img := updates[i].Before
		if !img.Existed {
			store.Remove(img.Key)
			continue
		}
		writer := undoneBy
		if writer == "" {
			writer = img.Writer
		}
		store.Restore(storage.Record{Key: img.Key, Value: img.Value, Deleted: img.Deleted}, writer)
	}
}

// ApplyRedo re-applies txn's updates against store in log order, installing
// after-images. Used when rebuilding a store from the log after a crash.
func ApplyRedo(store *storage.Store, updates []Record, txnID string) {
	for _, rec := range updates {
		img := rec.After
		if img.Deleted {
			store.Delete(img.Key, txnID)
			continue
		}
		store.Put(img.Key, img.Value, txnID)
	}
}

// RecoverResult reports the outcome of crash recovery.
type RecoverResult struct {
	Redone  []string // committed transactions whose effects were re-applied
	Undone  []string // active transactions rolled back
	InDoubt []string // prepared transactions awaiting a coordinator decision
}

// Recover rebuilds store from the log: effects of committed transactions are
// redone in log order, loser (active) transactions are undone, and prepared
// transactions with a recorded decision are resolved accordingly. Prepared
// transactions without a decision are left applied and reported as in-doubt;
// the caller (the participant's recovery handler) must hold their locks and
// re-contact the coordinator — this is precisely the blocking window the
// O2PC protocol removes.
//
// When the log contains a complete checkpoint (WriteCheckpoint), recovery
// starts from the last one: its images load directly, carried protocol
// records inside the bracket (exposed-but-undecided subtransactions, marks,
// in-doubt preparations — see CarryRecords) replay first, and then the tail.
func Recover(store *storage.Store, log Log) (RecoverResult, error) {
	records, err := log.Records()
	if err != nil {
		return RecoverResult{}, err
	}
	images, replay := splitCheckpoint(records)
	for _, rec := range images {
		store.Restore(storage.Record{
			Key:   rec.After.Key,
			Value: rec.After.Value,
		}, rec.After.Writer)
	}
	return recoverRecords(store, replay)
}

// splitCheckpoint partitions records around the last complete checkpoint:
// images are the bracket's snapshot records (nil when no checkpoint exists)
// and replay is everything recovery must run redo/undo/analysis over — the
// non-image records carried inside the bracket followed by the post-bracket
// tail. Without a checkpoint, replay is the whole log.
func splitCheckpoint(records []Record) (images, replay []Record) {
	begin, end, ok := lastCheckpoint(records)
	if !ok {
		return nil, records
	}
	for _, rec := range records[begin+1 : end] {
		if rec.Type == RecUpdate && rec.TxnID == ckptTxnID {
			images = append(images, rec)
			continue
		}
		replay = append(replay, rec)
	}
	return images, append(replay, records[end+1:]...)
}

// Replay returns the records recovery analysis runs over: the protocol
// records carried inside the last complete checkpoint bracket plus the tail
// after it, or the whole log when no checkpoint exists. Site-level recovery
// uses this view to rebuild its pending tables and marking sets.
func Replay(records []Record) []Record {
	_, replay := splitCheckpoint(records)
	return replay
}

// recoverRecords runs redo/undo resolution over an already-loaded record
// slice (everything after the last checkpoint, or the whole log).
func recoverRecords(store *storage.Store, records []Record) (RecoverResult, error) {
	a := Analyze(records)
	var res RecoverResult

	// Redo phase: replay every update in log order; committed and prepared
	// transactions keep their effects, losers are undone afterwards.
	// Image records from an incomplete checkpoint bracket (crash during
	// WriteCheckpoint) restate live values — redo would be harmless but the
	// loser-undo below would remove the keys, so skip them entirely.
	//
	// An ABORT record is appended only after the live roll-back restored
	// the before-images and while the transaction's locks were still held,
	// so its undo belongs at the record's log position — replaying it here
	// (with the logged attribution) keeps it ordered before any later
	// writer that locked the same keys after the live release. Undoing such
	// a transaction at the end instead would re-install its stale
	// before-images on top of later committed writes.
	for _, rec := range records {
		switch {
		case rec.Type == RecUpdate && rec.TxnID != ckptTxnID:
			ApplyRedo(store, []Record{rec}, rec.TxnID)
		case rec.Type == RecAbort:
			ApplyUndo(store, a.Updates[rec.TxnID], rec.Aux)
		}
	}

	// Resolve each transaction.
	for txn, st := range a.Status {
		if txn == ckptTxnID {
			continue
		}
		switch st {
		case StatusCommitted:
			res.Redone = append(res.Redone, txn)
		case StatusActive:
			ApplyUndo(store, a.Updates[txn], "recovery:"+txn)
			res.Undone = append(res.Undone, txn)
		case StatusPrepared:
			switch a.Decisions[txn] {
			case "commit":
				res.Redone = append(res.Redone, txn)
			case "abort":
				ApplyUndo(store, a.Updates[txn], "recovery:"+txn)
				res.Undone = append(res.Undone, txn)
			default:
				res.InDoubt = append(res.InDoubt, txn)
			}
		case StatusAborted:
			// The log-order pass above already replayed the undo at the
			// ABORT record's position; re-undoing here would clobber later
			// committed writes to the same keys.
			res.Undone = append(res.Undone, txn)
		}
	}
	return res, nil
}
