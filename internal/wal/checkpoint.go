package wal

import (
	"errors"
	"os"
	"sort"

	"o2pc/internal/storage"
)

// Checkpointing: a sharp checkpoint captures the full live store in the
// log as a bracketed run of image records, letting recovery start from the
// last complete checkpoint instead of the log's beginning, and letting a
// file-backed log be compacted to (checkpoint + tail).
//
//	CHECKPOINT(aux="begin")
//	UPDATE(txn=ckptTxnID, After=image) ... one per live key
//	carried protocol records (CarryRecords) ...
//	CHECKPOINT(aux="end")
//
// A checkpoint must not truncate state the protocol still needs: an
// exposed-but-undecided subtransaction's before-images and exposure record
// are the only way a restarted site can resume the decision inquiry and
// compensate on ABORT, and the marking sets exist precisely to outlive the
// transactions that created them. WriteCheckpoint therefore carries those
// records forward inside the bracket (CarryRecords), and Recover replays
// them on top of the restored images.
//
// Callers must quiesce update activity for the duration of WriteCheckpoint
// (the site takes its lock manager's quiescence as given when invoked from
// a maintenance window); records appended after the "end" marker replay on
// top of the checkpoint as usual.

// ckptTxnID tags checkpoint image records.
const ckptTxnID = "__checkpoint__"

const (
	ckptBegin = "begin"
	ckptEnd   = "end"
)

// WriteCheckpoint appends a sharp checkpoint of store to log and returns
// the LSN of its "end" marker. Protocol records the tail may not truncate
// (CarryRecords) are re-appended inside the bracket.
func WriteCheckpoint(log Log, store *storage.Store) (uint64, error) {
	records, err := log.Records()
	if err != nil {
		return 0, err
	}
	carry := CarryRecords(records)
	if _, err := log.Append(Record{Type: RecCheckpoint, TxnID: ckptTxnID, Aux: ckptBegin}); err != nil {
		return 0, err
	}
	snap := store.Snapshot()
	// Stable order for reproducible logs.
	for _, key := range store.Keys() {
		rec := snap[key]
		img := Image{
			Key:     key,
			Value:   append(storage.Value(nil), rec.Value...),
			Existed: true,
			Writer:  rec.Writer,
		}
		if _, err := log.Append(Record{Type: RecUpdate, TxnID: ckptTxnID, After: img, Before: Image{Key: key}}); err != nil {
			return 0, err
		}
	}
	for _, rec := range carry {
		rec.LSN = 0 // Append reassigns
		if _, err := log.Append(rec); err != nil {
			return 0, err
		}
	}
	lsn, err := log.Append(Record{Type: RecCheckpoint, TxnID: ckptTxnID, Aux: ckptEnd})
	if err != nil {
		return 0, err
	}
	return lsn, log.Sync()
}

// CarryRecords computes the protocol records a checkpoint of records must
// carry forward because truncating them would lose recovery state:
//
//   - every record of a transaction that is still active (including a
//     compensating transaction interrupted between COMP-BEGIN and COMP-END),
//   - every record of a prepared transaction with no recorded decision
//     (in-doubt — its before-images are needed should the decision be ABORT),
//   - every record of an exposed subtransaction that is undecided, or whose
//     ABORT decision has not yet been fully compensated (the exposure payload
//     and before-images drive the resumed inquiry and the compensating
//     subtransaction),
//   - one RecMark record per currently-set mark, snapshotting the marking
//     sets (which outlive the transactions that created them).
//
// Records are returned in their original log order, marks last in sorted
// order, so carried state replays deterministically.
func CarryRecords(records []Record) []Record {
	replay := Replay(records)
	a := Analyze(replay)

	carry := make(map[string]bool)
	for txn, st := range a.Status {
		if txn == ckptTxnID {
			continue
		}
		switch st {
		case StatusActive:
			carry[txn] = true
		case StatusPrepared:
			if _, decided := a.Decisions[txn]; !decided {
				carry[txn] = true
			}
		case StatusCommitted, StatusAborted:
			// Resolved; the store snapshot reflects them.
		}
	}
	for txn := range a.Exposed {
		if a.Status[txn] != StatusCommitted {
			continue // exposure appended but the local commit failed; rolled back
		}
		switch a.Decisions[txn] {
		case "commit":
			// Decided and resolved.
		case "abort":
			if !a.CompensationComplete(txn) {
				carry[txn] = true
			}
		default:
			carry[txn] = true // undecided: the blocking-free window Recover must rebuild
		}
	}

	var out []Record
	for _, rec := range replay {
		switch rec.Type {
		case RecMark, RecUnmark, RecCheckpoint:
			// Mark state is re-snapshotted below; stray bracket markers
			// never carry.
			continue
		case RecBegin, RecUpdate, RecCommit, RecAbort, RecPrepared,
			RecDecision, RecCompBegin, RecCompEnd, RecExposed,
			RecTerm, RecAccept:
		}
		if carry[rec.TxnID] {
			out = append(out, rec)
		}
	}

	var sets []string
	for set := range a.Marks {
		sets = append(sets, set)
	}
	sort.Strings(sets)
	for _, set := range sets {
		var txns []string
		for txn := range a.Marks[set] {
			txns = append(txns, txn)
		}
		sort.Strings(txns)
		for _, txn := range txns {
			out = append(out, Record{Type: RecMark, TxnID: txn, Aux: set})
		}
	}
	return out
}

// lastCheckpoint returns the index range (begin, end) of the last complete
// checkpoint in records, or ok=false when none exists.
func lastCheckpoint(records []Record) (begin, end int, ok bool) {
	begin, end = -1, -1
	for i, rec := range records {
		if rec.Type != RecCheckpoint {
			continue
		}
		switch rec.Aux {
		case ckptBegin:
			begin = i
			end = -1
		case ckptEnd:
			if begin >= 0 {
				end = i
			}
		}
	}
	return begin, end, begin >= 0 && end > begin
}

// Compact rewrites a file-backed log as (checkpoint of store + carried
// protocol records), atomically replacing the file at path. The log must be
// quiesced in the 2PC sense — no transaction mid-update — but exposed
// subtransactions, in-doubt preparations, and marking sets survive the
// rewrite via CarryRecords.
func Compact(path string, store *storage.Store) (*FileLog, error) {
	old, err := OpenFileLog(path)
	if err != nil {
		return nil, err
	}
	records, err := old.Records()
	if cerr := old.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	carry := CarryRecords(records)
	tmp := path + ".compact"
	nl, err := OpenFileLog(tmp)
	if err != nil {
		return nil, err
	}
	for _, rec := range carry {
		rec.LSN = 0
		if _, err := nl.Append(rec); err != nil {
			err = errors.Join(err, nl.Close())
			os.Remove(tmp)
			return nil, err
		}
	}
	if _, err := WriteCheckpoint(nl, store); err != nil {
		err = errors.Join(err, nl.Close())
		os.Remove(tmp)
		return nil, err
	}
	if err := nl.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return OpenFileLog(path)
}
