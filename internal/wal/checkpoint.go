package wal

import (
	"os"

	"o2pc/internal/storage"
)

// Checkpointing: a sharp checkpoint captures the full live store in the
// log as a bracketed run of image records, letting recovery start from the
// last complete checkpoint instead of the log's beginning, and letting a
// file-backed log be compacted to (checkpoint + tail).
//
//	CHECKPOINT(aux="begin")
//	UPDATE(txn=ckptTxnID, After=image) ... one per live key
//	CHECKPOINT(aux="end")
//
// Callers must quiesce update activity for the duration of WriteCheckpoint
// (the site takes its lock manager's quiescence as given when invoked from
// a maintenance window); records appended after the "end" marker replay on
// top of the checkpoint as usual.

// ckptTxnID tags checkpoint image records.
const ckptTxnID = "__checkpoint__"

const (
	ckptBegin = "begin"
	ckptEnd   = "end"
)

// WriteCheckpoint appends a sharp checkpoint of store to log and returns
// the LSN of its "end" marker.
func WriteCheckpoint(log Log, store *storage.Store) (uint64, error) {
	if _, err := log.Append(Record{Type: RecCheckpoint, TxnID: ckptTxnID, Aux: ckptBegin}); err != nil {
		return 0, err
	}
	snap := store.Snapshot()
	// Stable order for reproducible logs.
	for _, key := range store.Keys() {
		rec := snap[key]
		img := Image{
			Key:     key,
			Value:   append(storage.Value(nil), rec.Value...),
			Existed: true,
			Writer:  rec.Writer,
		}
		if _, err := log.Append(Record{Type: RecUpdate, TxnID: ckptTxnID, After: img, Before: Image{Key: key}}); err != nil {
			return 0, err
		}
	}
	lsn, err := log.Append(Record{Type: RecCheckpoint, TxnID: ckptTxnID, Aux: ckptEnd})
	if err != nil {
		return 0, err
	}
	return lsn, log.Sync()
}

// lastCheckpoint returns the index range (begin, end) of the last complete
// checkpoint in records, or ok=false when none exists.
func lastCheckpoint(records []Record) (begin, end int, ok bool) {
	begin, end = -1, -1
	for i, rec := range records {
		if rec.Type != RecCheckpoint {
			continue
		}
		switch rec.Aux {
		case ckptBegin:
			begin = i
			end = -1
		case ckptEnd:
			if begin >= 0 {
				end = i
			}
		}
	}
	return begin, end, begin >= 0 && end > begin
}

// Compact rewrites a file-backed log as (checkpoint of store + nothing),
// atomically replacing the file at path. The log must be quiesced: no
// in-flight transactions (their undo information would be dropped).
func Compact(path string, store *storage.Store) (*FileLog, error) {
	tmp := path + ".compact"
	nl, err := OpenFileLog(tmp)
	if err != nil {
		return nil, err
	}
	if _, err := WriteCheckpoint(nl, store); err != nil {
		nl.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := nl.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return OpenFileLog(path)
}
