package wal

import (
	"bufio"
	"os"
	"sync"
)

// FileLog is a file-backed Log for the multi-process deployment. Records are
// buffered and flushed on Sync (group commit is the caller's policy).
type FileLog struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	nextLSN uint64
	closed  bool
}

// OpenFileLog opens (or creates) the log at path, scanning existing records
// to determine the next LSN.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	recs, err := ReadAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	next := uint64(1)
	if n := len(recs); n > 0 {
		next = recs[n-1].LSN + 1
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	return &FileLog{f: f, w: bufio.NewWriter(f), nextLSN: next}, nil
}

// Append implements Log.
func (l *FileLog) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	if err := WriteRecord(l.w, rec); err != nil {
		return 0, err
	}
	return rec.LSN, nil
}

// Records implements Log by re-reading the file from the start.
func (l *FileLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return nil, err
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return nil, err
	}
	recs, err := ReadAll(l.f)
	if err != nil {
		return nil, err
	}
	if _, err := l.f.Seek(0, 2); err != nil {
		return nil, err
	}
	return recs, nil
}

// Sync implements Log, flushing buffers and calling fsync.
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
