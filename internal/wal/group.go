package wal

import (
	"context"
	"sync"
	"time"

	"o2pc/internal/metrics"
	"o2pc/internal/sim"
)

// Group-commit defaults, used when the corresponding GroupCommitConfig
// fields are zero.
const (
	// DefaultGroupWindow is how long the flusher waits to accumulate a
	// batch before syncing.
	DefaultGroupWindow = 200 * time.Microsecond
	// DefaultGroupMaxBatch caps a batch: when this many committers are
	// queued the flush happens immediately, without waiting out the window.
	DefaultGroupMaxBatch = 64
)

// GroupCommitConfig parameterizes NewGroupCommitLog.
type GroupCommitConfig struct {
	// Window bounds how long a Sync caller can wait for companions before
	// the batch is flushed. Zero selects DefaultGroupWindow.
	Window time.Duration
	// MaxBatch flushes immediately once this many callers are queued
	// (without waiting for the window to elapse). Zero selects
	// DefaultGroupMaxBatch.
	MaxBatch int
	// Clock drives the flusher's window timer. Under a sim.VirtualClock
	// the whole batching dance runs in virtual time and stays
	// deterministic; nil selects the real clock.
	Clock sim.Clock
	// OnFlush, when set, is invoked after every physical sync with the
	// number of coalesced Sync callers it covered. The site layer uses it
	// to emit WALSync trace events carrying the batch size (the wal
	// package cannot import trace — trace depends on wal).
	OnFlush func(batch int)
}

// GroupCommitStats exposes the decorator's instruments for adoption into a
// metrics.Registry.
type GroupCommitStats struct {
	// Syncs counts physical syncs issued to the inner log.
	Syncs *metrics.Counter
	// BatchSize records the number of callers coalesced per physical sync.
	BatchSize *metrics.Histogram
	// SyncLatency records the inner Sync duration in milliseconds.
	SyncLatency *metrics.Histogram
}

// Publish adopts the instruments into reg under prefixed names.
func (s GroupCommitStats) Publish(reg *metrics.Registry, prefix string) {
	reg.Adopt(prefix+"wal_syncs_total", s.Syncs)
	reg.Adopt(prefix+"wal_batch_size", s.BatchSize)
	reg.Adopt(prefix+"wal_sync_latency_ms", s.SyncLatency)
}

// syncWaiter is one caller parked in Sync awaiting the batch flush.
type syncWaiter struct {
	done chan error // buffered(1); receives the flush outcome
	// claim is the clock's wake-up reservation, installed by the flusher
	// immediately before the send on done and consumed by the woken
	// caller (same discipline as the lock manager's grant channel).
	claim func()
}

// GroupCommitLog is a Log decorator implementing group commit: concurrent
// Append+Sync callers coalesce into a single physical sync of the inner
// log. Callers enqueue in Sync; a flusher goroutine (armed on demand,
// driven by the configured Clock so virtual-time runs stay deterministic)
// syncs once per batch and releases every waiter with the shared outcome.
//
// Append passes straight through to the inner log — the write-ahead
// ordering of records is untouched; only the *durability wait* is batched.
// A caller's Sync still returns only after a physical sync covering its
// records has completed, so the Theorem 2 write-ahead discipline (exposure
// record durable before early lock release) is preserved verbatim.
type GroupCommitLog struct {
	inner    Log
	clock    sim.Clock
	window   time.Duration
	maxBatch int
	onFlush  func(int)

	mu      sync.Mutex
	waiters []*syncWaiter
	armed   bool
	closed  bool

	syncs       metrics.Counter
	batchSize   *metrics.Histogram
	syncLatency *metrics.Histogram
}

// NewGroupCommitLog wraps inner with group commit.
func NewGroupCommitLog(inner Log, cfg GroupCommitConfig) *GroupCommitLog {
	if cfg.Window <= 0 {
		cfg.Window = DefaultGroupWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultGroupMaxBatch
	}
	return &GroupCommitLog{
		inner:       inner,
		clock:       sim.OrReal(cfg.Clock),
		window:      cfg.Window,
		maxBatch:    cfg.MaxBatch,
		onFlush:     cfg.OnFlush,
		batchSize:   metrics.NewHistogram(),
		syncLatency: metrics.NewHistogram(),
	}
}

// Stats returns the decorator's instruments.
func (g *GroupCommitLog) Stats() GroupCommitStats {
	return GroupCommitStats{Syncs: &g.syncs, BatchSize: g.batchSize, SyncLatency: g.syncLatency}
}

// Inner returns the wrapped log (recovery reads records from it directly).
func (g *GroupCommitLog) Inner() Log { return g.inner }

// Append implements Log: mutations flow straight through, keeping LSN
// assignment and record order the inner log's business.
func (g *GroupCommitLog) Append(rec Record) (uint64, error) { return g.inner.Append(rec) }

// Records implements Log.
func (g *GroupCommitLog) Records() ([]Record, error) { return g.inner.Records() }

// Sync implements Log: the caller is enqueued into the current batch and
// blocks until a physical sync covering it completes. The first enqueuer
// arms the flusher; a caller that fills the batch to MaxBatch flushes
// immediately itself rather than waiting out the window.
func (g *GroupCommitLog) Sync() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	w := &syncWaiter{done: make(chan error, 1)}
	g.waiters = append(g.waiters, w)
	if len(g.waiters) >= g.maxBatch {
		batch := g.takeBatchLocked()
		g.mu.Unlock()
		g.flush(batch)
		return g.await(w)
	}
	if !g.armed {
		g.armed = true
		//o2pcvet:ignore goleak -- one-shot flusher: it exits after a single bounded window, and Close flushes the pending batch synchronously
		g.clock.Go(g.flusherOnce)
	}
	g.mu.Unlock()
	return g.await(w)
}

// flusherOnce is the armed flusher: it waits out the window, takes
// whatever batch accumulated, and flushes it. One flusher is in flight at
// a time; it disarms itself while holding the mutex so a caller arriving
// after the batch is taken arms a fresh one.
func (g *GroupCommitLog) flusherOnce() {
	//o2pcvet:ignore errflow -- Background never expires, so the window sleep cannot fail
	_ = g.clock.Sleep(context.Background(), g.window)
	g.mu.Lock()
	g.armed = false
	if g.closed {
		g.mu.Unlock()
		return
	}
	batch := g.takeBatchLocked()
	g.mu.Unlock()
	g.flush(batch)
}

// takeBatchLocked detaches the accumulated waiters. Callers must hold g.mu.
func (g *GroupCommitLog) takeBatchLocked() []*syncWaiter {
	batch := g.waiters
	g.waiters = nil
	return batch
}

// flush issues one physical sync for the whole batch and releases every
// waiter with its outcome. Each release pairs the channel send with a
// PrepareWake reservation so virtual time cannot advance in the window
// between the send and the waiter resuming.
func (g *GroupCommitLog) flush(batch []*syncWaiter) {
	if len(batch) == 0 {
		return
	}
	start := g.clock.Now()
	err := g.inner.Sync()
	g.syncs.Inc()
	g.batchSize.Observe(float64(len(batch)))
	g.syncLatency.ObserveDuration(g.clock.Since(start))
	if g.onFlush != nil {
		g.onFlush(len(batch))
	}
	for _, w := range batch {
		w.claim = g.clock.PrepareWake()
		w.done <- err
	}
}

// await blocks the Sync caller until its batch is flushed, following the
// lock manager's wait discipline: try the channel first, then park under
// BlockOn so a virtual clock knows the goroutine is waiting on a non-clock
// hand-off.
func (g *GroupCommitLog) await(w *syncWaiter) error {
	var err error
	select {
	case err = <-w.done:
		if w.claim != nil {
			w.claim()
		}
		return err
	default:
	}
	g.clock.BlockOn(context.Background(), func() func() {
		err = <-w.done
		return w.claim
	})
	if w.claim != nil {
		w.claim()
	}
	return err
}

// Close flushes any queued waiters and closes the inner log. Sync calls
// after Close return ErrClosed.
func (g *GroupCommitLog) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return g.inner.Close()
	}
	g.closed = true
	batch := g.takeBatchLocked()
	g.mu.Unlock()
	g.flush(batch)
	return g.inner.Close()
}

var _ Log = (*GroupCommitLog)(nil)
