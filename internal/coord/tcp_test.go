package coord

import (
	"net"
	"testing"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/site"
	"o2pc/internal/storage"
)

// TestTCPEndToEnd deploys two sites and a coordinator over real TCP
// sockets and runs commit and compensation flows through them — the same
// wiring cmd/o2pc-site and cmd/o2pc-coord use.
func TestTCPEndToEnd(t *testing.T) {
	proto.RegisterGob()
	rec := history.NewRecorder()

	addrs := map[string]string{}
	var servers []*rpc.Server
	var sites []*site.Site
	for _, name := range []string{"s0", "s1"} {
		s := site.NewSite(site.Config{Name: name, Recorder: rec, ResolvePeriod: 5 * time.Millisecond})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := rpc.NewServer(name, s.Handle)
		go srv.Serve(ln)
		addrs[name] = ln.Addr().String()
		servers = append(servers, srv)
		sites = append(sites, s)
		s.SeedInt64("acct", 100)
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	// Coordinator with its own listener for Resolve inquiries.
	client := rpc.NewTCPClient(addrs)
	defer client.Close()
	c := New(Config{Name: "c0", Recorder: rec}, client)
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	csrv := rpc.NewServer("c0", c.Handle)
	go csrv.Serve(cln)
	defer csrv.Close()
	for _, s := range sites {
		s.SetCaller(rpc.NewTCPClient(map[string]string{"c0": cln.Addr().String()}))
	}

	// Committed transfer over TCP.
	res := c.Run(bg(), TxnSpec{
		Protocol: proto.O2PC, Marking: proto.MarkP1,
		Subtxns: []SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.AddMin("acct", -30, 0)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Add("acct", 30), proto.Read("acct")}, Comp: proto.CompSemantic},
		},
	})
	if !res.Committed() {
		t.Fatalf("TCP transfer failed: %v (%v)", res.Outcome, res.Err)
	}
	if v := res.Reads["s1"]["acct"]; storage.MustDecodeInt64(v) != 130 {
		t.Fatalf("read-back = %v", v)
	}
	if sites[0].ReadInt64("acct") != 70 {
		t.Fatalf("s0 acct = %d", sites[0].ReadInt64("acct"))
	}

	// Doomed transfer: compensation over TCP.
	sites[1].SetVoteAbortInjector(func(id string) bool { return id == "Tno" })
	res = c.Run(bg(), TxnSpec{
		ID: "Tno", Protocol: proto.O2PC, Marking: proto.MarkP1,
		Subtxns: []SubtxnSpec{
			{Site: "s0", Ops: []proto.Operation{proto.AddMin("acct", -30, 0)}, Comp: proto.CompSemantic},
			{Site: "s1", Ops: []proto.Operation{proto.Add("acct", 30)}, Comp: proto.CompSemantic},
		},
	})
	if res.Committed() {
		t.Fatalf("doomed TCP transfer committed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for sites[0].ReadInt64("acct") != 70 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sites[0].ReadInt64("acct"); got != 70 {
		t.Fatalf("s0 acct = %d after compensation, want 70", got)
	}
	if got := sites[1].ReadInt64("acct"); got != 130 {
		t.Fatalf("s1 acct = %d after rollback, want 130", got)
	}
}
