package coord

import (
	"context"
	"fmt"
	"sort"

	"o2pc/internal/history"
	"o2pc/internal/proto"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
)

// Run executes one global transaction end to end and reports its result.
// Run blocks until the transaction is resolved at the coordinator (the
// decision is logged and delivery has been attempted); decision delivery
// to unreachable participants continues in the background.
func (c *Coordinator) Run(ctx context.Context, spec TxnSpec) Result {
	start := c.clock.Now()
	c.stats.InFlight.Inc()
	res := c.run(ctx, spec)
	c.stats.InFlight.Dec()
	res.Latency = c.clock.Since(start)
	c.stats.Latency.ObserveDuration(res.Latency)
	switch res.Outcome {
	case Committed:
		c.stats.Commits.Inc()
		c.stats.CommitLatency.ObserveDuration(res.Latency)
	case AbortedMarking:
		c.stats.MarkingAborts.Inc()
		c.stats.Aborts.Inc()
	default:
		c.stats.Aborts.Inc()
	}
	c.tracer.Emit(c.cfg.Name, trace.EvTxnOutcome, res.ID, "", res.Outcome.String())
	return res
}

func (c *Coordinator) run(ctx context.Context, spec TxnSpec) Result {
	if len(spec.Subtxns) == 0 {
		return Result{Err: fmt.Errorf("coord: empty transaction spec")}
	}
	id := spec.ID
	if id == "" {
		id = c.nextID()
	}
	retries := spec.MarkingRetries
	if retries == 0 {
		retries = 3
	}
	res := Result{ID: id}
	if rec := c.cfg.Recorder; rec != nil {
		rec.Declare(id, history.KindGlobal, "")
	}
	// The spec's site list and its joined form are needed several times
	// (started bookkeeping, BEGIN record, trace, abort paths); compute each
	// once. Every consumer treats the slice as read-only.
	sites := execSites(spec)
	sitesAux := joinSites(sites)
	c.mu.Lock()
	crashed := c.crashed
	c.started[id] = sites
	c.mu.Unlock()
	if crashed {
		res.Outcome = AbortedCoordinator
		res.Err = ErrCrashed
		return res
	}
	c.tracer.Emit(c.cfg.Name, trace.EvTxnBegin, id, "",
		spec.Protocol.String()+"/"+spec.Marking.String()+" sites="+sitesAux)
	// Write-ahead: without a durable BEGIN, recovery could not presume
	// abort for this transaction — so an unloggable BEGIN aborts the run
	// before any subtransaction ships. (Replicated logs require a majority
	// of replicas to hold the BEGIN before returning.)
	if err := c.dlog.Begin(ctx, id, sites, spec.Marking); err != nil {
		res.Outcome = AbortedCoordinator
		res.Err = fmt.Errorf("coord: logging begin for %s: %w", id, err)
		return res
	}

	// ---- Execution phase. Marking protocols thread the accumulating
	// transmarks through the subtransactions site by site (rule R1 state),
	// which forces sequential shipment; without marking the subtransactions
	// are independent and fan out to their sites concurrently — the same
	// pattern as the vote round — with per-site order preserved.
	var executed []string
	if c.cfg.ParallelExec && spec.Marking == proto.MarkNone && len(spec.Subtxns) > 1 {
		if err := c.execFanOut(ctx, id, spec, retries, &res); err != nil {
			// Abort every spec site: with chains in flight concurrently we
			// cannot know which executed, and a site may have executed its
			// subtransaction even though the reply was lost. Decisions are
			// idempotent, so a site that never saw the request just acks.
			res.Err = err
			if res.Outcome == 0 {
				res.Outcome = AbortedExec
			}
			c.decide(ctx, id, false, sites, spec)
			return res
		}
		executed = sites
	} else {
		var transmarks []string
		visited := false
		for _, st := range spec.Subtxns {
			req := proto.ExecRequest{
				TxnID:       id,
				Ops:         st.Ops,
				Comp:        st.Comp,
				Compensator: st.Compensator,
				Protocol:    spec.Protocol,
				Marking:     spec.Marking,
				TransMarks:  transmarks,
				Visited:     visited,
			}
			reply, err := c.execWithRetry(ctx, id, st.Site, req, retries, &res)
			if err != nil {
				// Site unreachable, subtransaction failed, or fatal marking
				// rejection: abort whatever already executed. The failing
				// site is included in the abort delivery — it may have
				// executed the subtransaction even though its reply was lost
				// (decisions are idempotent, so a site that never saw the
				// request just acks).
				res.Err = err
				if res.Outcome == 0 {
					res.Outcome = AbortedExec
				}
				c.decide(ctx, id, false, append(executed, st.Site), spec)
				return res
			}
			if len(reply.Reads) > 0 {
				if res.Reads == nil {
					res.Reads = make(map[string]map[string][]byte)
				}
				res.Reads[st.Site] = reply.Reads
			}
			transmarks = reply.Marks
			visited = true
			executed = append(executed, st.Site)
		}
	}

	c.finishCommit(ctx, id, executed, spec, &res)
	return res
}

// finishCommit drives the commit point of an executed transaction: the
// parallel vote round, the read-only participant filtering, and the
// decision. It fills res.Outcome (and res.Err on coordinator failure).
// Shared by the one-shot Run path and Session.Commit.
func (c *Coordinator) finishCommit(ctx context.Context, id string, executed []string, spec TxnSpec, res *Result) {
	// ---- Vote phase: VOTE-REQ to every participant in parallel.
	allYes, readOnly := c.collectVotes(ctx, id, executed)
	// Read-only participants have left the protocol; decisions go only to
	// the rest. The filtered list is a fresh slice: executed may alias the
	// run's shared site list (also held by c.started for recovery).
	if readOnly != nil {
		var rest []string
		for i, s := range executed {
			if !readOnly[i] {
				rest = append(rest, s)
			}
		}
		executed = rest
	}

	if c.checkCrash(id, CrashAfterVotes) {
		// Crash before the decision is durable: participants are left
		// prepared (2PC: blocked; O2PC: locally committed, awaiting the
		// decision). Recovery will presume abort.
		res.Outcome = AbortedCoordinator
		res.Err = ErrCrashed
		return
	}

	if !allYes {
		res.Outcome = AbortedVote
		c.decide(ctx, id, false, executed, spec)
		return
	}
	if c.decide(ctx, id, true, executed, spec) {
		res.Outcome = Committed
	} else {
		// A recovery ran while this transaction was still in flight and
		// presumed abort; that durable decision supersedes the commit.
		res.Outcome = AbortedCoordinator
		res.Err = ErrCrashed
	}
}

// execFanOut ships the subtransactions of a MarkNone transaction
// concurrently, one chain per site: subtransactions addressed to the same
// site keep their spec order within that site's chain, while distinct
// sites' chains proceed in parallel (spawned in spec order, so virtual-time
// runs stay deterministic). Retry semantics are per call, exactly as in the
// sequential path. When chains fail, the one whose failing subtransaction
// comes first in spec order decides the reported error and outcome,
// matching what the sequential path would have reported.
func (c *Coordinator) execFanOut(ctx context.Context, id string, spec TxnSpec, retries int, res *Result) error {
	type chain struct {
		site string
		subs []SubtxnSpec
		idxs []int // spec index of each subtransaction in the chain
	}
	bySite := make(map[string]*chain, len(spec.Subtxns))
	var chains []*chain
	for i, st := range spec.Subtxns {
		ch := bySite[st.Site]
		if ch == nil {
			ch = &chain{site: st.Site}
			bySite[st.Site] = ch
			chains = append(chains, ch)
		}
		ch.subs = append(ch.subs, st)
		ch.idxs = append(ch.idxs, i)
	}

	// Each chain gets a private Result: execWithRetry mutates Outcome and
	// MarkRetries, which must not race across chains.
	type chainResult struct {
		res    Result
		err    error
		failAt int // spec index of the failing subtransaction
		reads  map[string][]byte
	}
	outs := make([]chainResult, len(chains))
	g := sim.NewGroup(c.clock)
	for ci, ch := range chains {
		ci, ch := ci, ch
		c.pool.Spawn(g, func() {
			out := &outs[ci]
			for k, st := range ch.subs {
				req := proto.ExecRequest{
					TxnID:       id,
					Ops:         st.Ops,
					Comp:        st.Comp,
					Compensator: st.Compensator,
					Protocol:    spec.Protocol,
					Marking:     spec.Marking,
				}
				reply, err := c.execWithRetry(ctx, id, ch.site, req, retries, &out.res)
				if err != nil {
					out.err = err
					out.failAt = ch.idxs[k]
					return
				}
				if len(reply.Reads) > 0 {
					out.reads = reply.Reads
				}
			}
		})
	}
	g.Wait()

	fail := -1
	for ci := range outs {
		out := &outs[ci]
		res.MarkRetries += out.res.MarkRetries
		if out.err != nil && (fail == -1 || out.failAt < outs[fail].failAt) {
			fail = ci
		}
		if out.reads != nil {
			if res.Reads == nil {
				res.Reads = make(map[string]map[string][]byte)
			}
			res.Reads[chains[ci].site] = out.reads
		}
	}
	if fail >= 0 {
		if outs[fail].res.Outcome != 0 {
			res.Outcome = outs[fail].res.Outcome
		}
		return outs[fail].err
	}
	return nil
}

// execWithRetry ships one subtransaction, absorbing retryable marking
// rejections up to the retry budget.
func (c *Coordinator) execWithRetry(ctx context.Context, id, site string, req proto.ExecRequest, retries int, res *Result) (proto.ExecReply, error) {
	for attempt := 0; ; attempt++ {
		c.tracer.Emit(c.cfg.Name, trace.EvExecSend, id, site, "")
		raw, err := c.caller.Call(ctx, c.cfg.Name, site, req)
		if err != nil {
			return proto.ExecReply{}, fmt.Errorf("coord: exec %s at %s: %w", id, site, err)
		}
		reply, ok := raw.(proto.ExecReply)
		if !ok {
			return proto.ExecReply{}, fmt.Errorf("coord: exec %s at %s: unexpected reply %T", id, site, raw)
		}
		for _, w := range reply.Witnesses {
			c.board.AddWitness(w.Forward, w.Site)
		}
		switch {
		case reply.OK:
			return reply, nil
		case reply.Rejected && !reply.Fatal && attempt < retries:
			res.MarkRetries++
			c.stats.MarkingRetries.Inc()
			if err := c.clock.Sleep(ctx, c.cfg.MarkingRetryDelay); err != nil {
				return proto.ExecReply{}, err
			}
			continue
		case reply.Rejected:
			res.Outcome = AbortedMarking
			return proto.ExecReply{}, fmt.Errorf("coord: exec %s at %s rejected by marking protocol: %s", id, site, reply.Reason)
		default:
			return proto.ExecReply{}, fmt.Errorf("coord: exec %s at %s failed: %s", id, site, reply.Err)
		}
	}
}

// collectVotes runs the vote round in parallel, feeding witness deltas to
// the board. Unreachable participants count as NO votes. It returns
// whether every participant voted YES, plus — only when some participant
// answered READ-ONLY — a slice aligned with sites marking those that have
// left the protocol and receive no decision (nil when none did, the
// common case; the vote phase used to allocate two maps and lock a mutex
// per vote here, which showed up in the contended profile).
func (c *Coordinator) collectVotes(ctx context.Context, id string, sites []string) (bool, []bool) {
	yes := make([]bool, len(sites))
	ro := make([]bool, len(sites))
	collectStart := c.clock.Now()
	vote := func(i int, site string) {
		c.tracer.Emit(c.cfg.Name, trace.EvVoteReqSend, id, site, "")
		sent := c.clock.Now()
		raw, err := c.caller.Call(ctx, c.cfg.Name, site, proto.VoteRequest{TxnID: id})
		c.stats.VoteRTT(site).ObserveDuration(c.clock.Since(sent))
		commit, readOnly := false, false
		if err == nil {
			if reply, ok := raw.(proto.VoteReply); ok {
				commit, readOnly = reply.Commit, reply.ReadOnly
				for _, w := range reply.Witnesses {
					c.board.AddWitness(w.Forward, w.Site)
				}
			}
		}
		c.tracer.Emit(c.cfg.Name, trace.EvVoteRecv, id, site, voteDetail(commit, readOnly, err))
		// Each task owns its index; no lock needed.
		yes[i], ro[i] = commit, readOnly
	}
	// Fan out all but the first site, which runs inline: this goroutine
	// would only park in Wait, so it may as well carry one vote itself.
	g := sim.NewGroup(c.clock)
	for i := 1; i < len(sites); i++ {
		i, site := i, sites[i]
		c.pool.Spawn(g, func() { vote(i, site) })
	}
	if len(sites) > 0 {
		vote(0, sites[0])
	}
	g.Wait()
	c.stats.PhaseCollect.ObserveDuration(c.clock.Since(collectStart))
	allYes, anyRO := true, false
	for i := range sites {
		allYes = allYes && yes[i]
		anyRO = anyRO || ro[i]
	}
	if !anyRO {
		ro = nil
	}
	return allYes, ro
}

// decide logs the decision, registers abort bookkeeping, and delivers the
// decision to every executed participant, retrying in the background until
// each acks. It returns the decision that actually took effect: if a
// concurrent recovery already decided this transaction (presumed abort
// while the run was still in flight), that durable decision wins — logging
// a second, possibly contradictory record would let participants apply
// divergent outcomes.
func (c *Coordinator) decide(ctx context.Context, id string, commit bool, executed []string, spec TxnSpec) bool {
	if prior, done := c.adoptPrior(id, commit, executed); done {
		if prior == nil {
			// No participant ever executed: nothing to deliver or log.
			return commit
		}
		if !c.checkCrash(id, CrashAfterDecisionLogged) {
			c.deliverDecision(ctx, id, prior)
		}
		return prior.commit
	}
	// Durability happens outside c.mu: a replicated decision log runs a
	// majority network round here, and the coordinator must keep serving
	// resolve inquiries (and other runs) meanwhile. The log itself
	// serializes racing writers and returns the decision that won.
	chosen, err := c.dlog.Decide(ctx, id, commit)
	if err != nil {
		// The decision cannot be made durable, so it must not be announced:
		// a coordinator that cannot write its log is crashed (participants
		// fall back to resolve inquiries, and recovery — with a working
		// log — will presume abort). For a commit intent the caller reports
		// AbortedCoordinator.
		c.mu.Lock()
		c.crashed = true
		c.mu.Unlock()
		c.tracer.Emit(c.cfg.Name, trace.EvCrash, id, "", "wal: "+err.Error())
		return false
	}
	commit = chosen
	c.mu.Lock()
	if prior, ok := c.decided[id]; ok {
		// A recovery pass decided this transaction while the durability
		// round was in flight; the decision log already reconciled the two
		// writes (first-writer-wins locally, consensus when replicated), so
		// prior.commit == chosen. Merge this run's participants in and
		// deliver.
		for _, s := range executed {
			prior.pending[s] = true
		}
		c.mu.Unlock()
		if !c.checkCrash(id, CrashAfterDecisionLogged) {
			c.deliverDecision(ctx, id, prior)
		}
		return prior.commit
	}
	c.tracer.Emit(c.cfg.Name, trace.EvDecisionReached, id, "", decisionAux(commit))
	d := &decided{
		commit:     commit,
		trackMarks: !commit && spec.Marking != proto.MarkNone,
		pending:    make(map[string]bool, len(executed)),
	}
	for _, s := range executed {
		d.pending[s] = true
	}
	c.decided[id] = d
	delete(c.started, id)
	c.mu.Unlock()

	if rec := c.cfg.Recorder; rec != nil {
		if commit {
			rec.SetFate(id, history.FateCommitted)
		} else {
			rec.SetFate(id, history.FateAborted)
		}
	}

	if c.checkCrash(id, CrashAfterDecisionLogged) {
		return commit // recovery will re-send
	}
	c.deliverDecision(ctx, id, d)
	return commit
}

// adoptPrior consults the in-memory decided map before any durability
// work and returns done=true when the caller must not write the log. Two
// cases end there: the transaction is already decided (a recovery pass
// presumed abort while the run was in flight — the durable record exists,
// the run's participants are merged into its pending set, and the prior
// is returned for immediate delivery), or no participant ever executed
// (a memory-only entry keeps resolve inquiries answerable; nil, true).
func (c *Coordinator) adoptPrior(id string, commit bool, executed []string) (*decided, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.decided[id]; ok {
		// Recovery owns this transaction: its decision is logged, so adopt
		// it — but still deliver it to this run's participants. Recovery's
		// own delivery pass may have preceded a late-executing site (the
		// site acked the decision as unknown before the subtransaction
		// landed), leaving it holding locks with no decision and no
		// resolver armed. Decisions are idempotent, so re-sending is safe.
		for _, s := range executed {
			prior.pending[s] = true
		}
		return prior, true
	}
	if len(executed) == 0 {
		c.decided[id] = &decided{commit: commit, pending: map[string]bool{}}
		delete(c.started, id)
		return nil, true
	}
	return nil, false
}

// deliverDecision sends the decision to all pending participants in
// parallel and synchronously retries unreachable ones until ctx expires;
// remaining deliveries continue in the background so Run can return.
func (c *Coordinator) deliverDecision(ctx context.Context, id string, d *decided) {
	c.mu.Lock()
	sites := make([]string, 0, len(d.pending))
	for s := range d.pending {
		sites = append(sites, s)
	}
	commit := d.commit
	c.mu.Unlock()
	// Deterministic spawn order: under a virtual clock, goroutine start
	// order influences which link RNG draws first.
	sort.Strings(sites)

	deliverStart := c.clock.Now()
	// Deliberately NOT pooled: a delivery retries until the site acks, so
	// it can block unboundedly — on a crashed site, or on the site's abort
	// compensation waiting for a lock that only ANOTHER pending decision
	// releases. Routing deliveries through the bounded pool lets blocked
	// ones exhaust the workers and deadlock the decisions that would
	// unblock them; the pool covers only the exec and vote phases, whose
	// site handlers are bounded by the lock timeout.
	g := sim.NewGroup(c.clock)
	for _, site := range sites {
		site := site
		g.Go(func() {
			c.sendDecisionUntilAcked(ctx, id, site, commit, d)
		})
	}
	g.Wait()
	if len(sites) > 0 {
		c.stats.PhaseDeliver.ObserveDuration(c.clock.Since(deliverStart))
	}

	// Once every participant has acked an abort, the marked-site set is
	// final and the UDUM1 board can start looking for completion.
	c.mu.Lock()
	finalize := d.trackMarks && len(d.pending) == 0
	if finalize {
		d.trackMarks = false // finalize exactly once
	}
	c.mu.Unlock()
	if finalize {
		c.board.FinalizeMarked(id)
	}
}

// sendDecisionUntilAcked delivers one decision, re-queuing undelivered
// unmark notices on failure.
func (c *Coordinator) sendDecisionUntilAcked(ctx context.Context, id, site string, commit bool, d *decided) {
	for {
		unmarks := c.board.DrainUnmarks(site)
		msg := proto.Decision{TxnID: id, Commit: commit, Unmarks: unmarks}
		c.tracer.Emit(c.cfg.Name, trace.EvDecisionSend, id, site, decisionAux(commit))
		raw, err := c.caller.Call(ctx, c.cfg.Name, site, msg)
		if err == nil {
			if ack, ok := raw.(proto.Ack); ok {
				c.tracer.Emit(c.cfg.Name, trace.EvDecisionAck, id, site, "")
				c.mu.Lock()
				delete(d.pending, site)
				track := d.trackMarks
				c.mu.Unlock()
				if track && ack.Marked {
					c.board.AddMarked(id, site)
				}
				return
			}
		}
		// Delivery failed: the unmark notices were not applied; requeue.
		c.board.Requeue(site, unmarks)
		if c.Crashed() {
			return // recovery re-sends
		}
		if err := c.clock.Sleep(ctx, c.cfg.DecisionRetry); err != nil {
			return
		}
	}
}

// Recover restarts a crashed coordinator: undecided transactions are
// presumed aborted (their participants may be blocked waiting — this is
// the moment 2PC participants finally unblock), and decided-but-
// undelivered transactions have their decisions re-sent.
func (c *Coordinator) Recover(ctx context.Context) error {
	c.tracer.Emit(c.cfg.Name, trace.EvRecover, "", "", "")
	// With a replicated decision log this is leader takeover: Snapshot
	// claims a fresh term, reads a majority of replicas, and finishes any
	// decision that was majority-acked but possibly undelivered — those
	// come back in decidedLog exactly like locally-logged ones.
	begunRecs, decidedLog, err := c.dlog.Snapshot(ctx)
	if err != nil {
		return err
	}
	begun := make(map[string][]string, len(begunRecs))
	wasP1 := make(map[string]bool, len(begunRecs))
	for _, b := range begunRecs {
		begun[b.TxnID] = b.Sites
		wasP1[b.TxnID] = b.Marking != "" && b.Marking != proto.MarkNone.String()
	}

	c.mu.Lock()
	c.crashed = false
	// Rebuild the decided set from the log; in-memory ack state is lost,
	// so every participant of every decided transaction is re-notified
	// (decisions are idempotent at the sites, and the Marked flags on the
	// fresh acks rebuild the UDUM1 board's view).
	for id, commit := range decidedLog {
		c.decided[id] = &decided{
			commit:     commit,
			trackMarks: !commit && wasP1[id],
			pending:    toSet(begun[id]),
		}
	}
	var presume []string
	for id := range begun {
		if _, ok := decidedLog[id]; !ok {
			presume = append(presume, id)
		}
	}
	c.mu.Unlock()
	// Presume in id order: map iteration order would make the WAL record
	// sequence (and hence the trace) differ between same-seed runs.
	sort.Strings(presume)

	// Presumed abort for undecided transactions. The decided map — not the
	// log snapshot read above — is re-checked: a run that was in flight
	// across the crash may have decided the transaction since, and a
	// decision, once made, is final. The decision log resolves the
	// remaining race window itself (PresumeAbort returns the decision that
	// actually took effect), so a run's commit can never be contradicted.
	for _, id := range presume {
		c.mu.Lock()
		if _, ok := c.decided[id]; ok {
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()
		chosen, err := c.dlog.PresumeAbort(ctx, id)
		if err != nil {
			return fmt.Errorf("coord %s: logging presumed abort for %s: %w", c.cfg.Name, id, err)
		}
		c.mu.Lock()
		if _, ok := c.decided[id]; ok {
			c.mu.Unlock()
			continue
		}
		c.decided[id] = &decided{
			commit:     chosen,
			trackMarks: !chosen && wasP1[id],
			pending:    toSet(begun[id]),
		}
		delete(c.started, id)
		c.mu.Unlock()
		detail := "abort presumed"
		if chosen {
			detail = decisionAux(chosen)
		}
		c.tracer.Emit(c.cfg.Name, trace.EvDecisionReached, id, "", detail)
		if rec := c.cfg.Recorder; rec != nil {
			if chosen {
				rec.SetFate(id, history.FateCommitted)
			} else {
				rec.SetFate(id, history.FateAborted)
			}
		}
	}
	if err := c.dlog.Sync(ctx); err != nil {
		return fmt.Errorf("coord %s: syncing presumed aborts: %w", c.cfg.Name, err)
	}

	// Re-deliver everything still pending, in deterministic id order.
	c.mu.Lock()
	toDeliver := make(map[string]*decided)
	for id, d := range c.decided {
		if len(d.pending) > 0 {
			toDeliver[id] = d
		}
	}
	c.mu.Unlock()
	ids := make([]string, 0, len(toDeliver))
	for id := range toDeliver {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Recovery re-delivery spawns directly, like deliverDecision's own
	// per-site sends: deliveries can block unboundedly and must not share
	// a bounded pool (see Config.ExecWorkers).
	g := sim.NewGroup(c.clock)
	for _, id := range ids {
		id, d := id, toDeliver[id]
		g.Go(func() {
			c.deliverDecision(ctx, id, d)
		})
	}
	g.Wait()
	return nil
}

func decisionAux(commit bool) string {
	if commit {
		return "commit"
	}
	return "abort"
}

// voteDetail spells a vote-round reply for trace details.
func voteDetail(commit, readOnly bool, err error) string {
	switch {
	case err != nil:
		return "unreachable"
	case readOnly:
		return "read-only"
	case commit:
		return "yes"
	default:
		return "no"
	}
}

func joinSites(sites []string) string {
	if len(sites) == 0 {
		return ""
	}
	n := len(sites) - 1
	for _, s := range sites {
		n += len(s)
	}
	b := make([]byte, 0, n)
	for i, s := range sites {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, s...)
	}
	return string(b)
}

func splitSites(aux string) []string {
	if aux == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(aux); i++ {
		if i == len(aux) || aux[i] == ',' {
			if i > start {
				out = append(out, aux[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// splitBeginAux parses a RecBegin Aux of the form "s0,s1|P1".
func splitBeginAux(aux string) (sites []string, marking string) {
	for i := len(aux) - 1; i >= 0; i-- {
		if aux[i] == '|' {
			return splitSites(aux[:i]), aux[i+1:]
		}
	}
	return splitSites(aux), ""
}

func toSet(sites []string) map[string]bool {
	m := make(map[string]bool, len(sites))
	for _, s := range sites {
		m[s] = true
	}
	return m
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
