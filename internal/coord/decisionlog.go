package coord

// The decision-durability seam. The coordinator's protocol logic never
// touches a wal.Log directly: every durable step of a global transaction's
// fate — the BEGIN intent, the decision, recovery's presumed aborts —
// goes through a DecisionLog. Two implementations exist:
//
//   - LocalLog (here): the classic single-coordinator decision log, a thin
//     veneer over one wal.Log. Byte-for-byte the pre-seam behavior: same
//     records, same append/sync sequence, same trace events.
//   - replog.Leader: Paxos Commit (Gray & Lamport, PAPERS.md) — the record
//     is chosen by a majority of decision-log replicas before Decide
//     returns, so no single coordinator crash blocks a YES-voting
//     participant once a majority of replicas is up.
//
// The contract that makes the seam safe: Decide and PresumeAbort return
// the decision that actually TOOK EFFECT, which may differ from the one
// proposed. A local log resolves races by first-writer-wins under its own
// mutex; the replicated log resolves them by consensus. Either way the
// coordinator adopts the returned value, so two racing writers (an
// in-flight run vs a recovery pass) can never announce divergent outcomes.

import (
	"context"
	"fmt"
	"sync"

	"o2pc/internal/proto"
	"o2pc/internal/wal"
)

// BeginRecord is one begun transaction recovered from a decision log.
type BeginRecord struct {
	TxnID string
	// Sites is the participant list recorded at BEGIN (the presumed-abort
	// delivery set).
	Sites []string
	// Marking is the marking-protocol mnemonic recorded at BEGIN ("" for
	// records predating marking).
	Marking string
}

// DecisionLog stores global-transaction fates durably. Implementations
// must be safe for concurrent use and must not be called with internal
// coordinator locks held: a replicated implementation performs network
// rounds inside these methods.
type DecisionLog interface {
	// Begin durably records the transaction's intent (participants and
	// marking protocol) before any subtransaction ships — the write-ahead
	// point recovery's presumed abort depends on.
	Begin(ctx context.Context, id string, sites []string, marking proto.MarkProtocol) error
	// Decide durably records the decision and returns the decision that
	// took effect: a prior decision for the same transaction (a recovery
	// race, or consensus choosing an earlier proposal) wins over the
	// proposed one.
	Decide(ctx context.Context, id string, commit bool) (bool, error)
	// PresumeAbort records abort for a transaction recovery found begun
	// but undecided. Like Decide it returns the effective decision — if a
	// racing run decided commit first, commit is returned. Durability may
	// be deferred to the next Sync (the local log batches recovery's
	// presumed aborts under one sync).
	PresumeAbort(ctx context.Context, id string) (bool, error)
	// Snapshot returns every begun transaction and every decision in the
	// log. The replicated implementation performs leader takeover here:
	// it claims a fresh term, reads a majority of replicas, and finishes
	// any decision that was majority-acked but possibly undelivered.
	Snapshot(ctx context.Context) ([]BeginRecord, map[string]bool, error)
	// Sync flushes deferred durability and reports writability. The
	// replicated implementation reports leadership: a deposed leader's
	// Sync fails, which is what wires /readyz to leader status.
	Sync(ctx context.Context) error
	// Close releases implementation resources. It does not close an
	// underlying wal.Log the implementation does not own.
	Close() error
}

// LocalLog is the single-coordinator DecisionLog over one wal.Log.
type LocalLog struct {
	name string
	wal  wal.Log

	mu        sync.Mutex
	decisions map[string]bool
}

// NewLocalLog wraps log as a DecisionLog for the named coordinator. The
// log is used as given — callers wanting WAL trace events pass a
// trace.WrapLog-decorated log. Ownership of log stays with the caller.
func NewLocalLog(name string, log wal.Log) *LocalLog {
	return &LocalLog{name: name, wal: log, decisions: make(map[string]bool)}
}

// Begin appends the BEGIN record ("sites|marking" Aux). Durability is
// deferred to the decision's sync, exactly as before the seam: losing a
// BEGIN to a crash costs nothing (no decision record implies abort).
func (l *LocalLog) Begin(ctx context.Context, id string, sites []string, marking proto.MarkProtocol) error {
	_, err := l.wal.Append(wal.Record{
		Type:  wal.RecBegin,
		TxnID: id,
		Aux:   joinSites(sites) + "|" + marking.String(),
	})
	return err
}

// Decide appends and syncs the decision record. First writer wins: a
// decision already recorded for id is returned unchanged, with no second
// append — the interlock that keeps a racing run and recovery pass from
// logging contradictory records.
func (l *LocalLog) Decide(ctx context.Context, id string, commit bool) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prior, ok := l.decisions[id]; ok {
		return prior, nil
	}
	_, err := l.wal.Append(wal.Record{Type: wal.RecDecision, TxnID: id, Aux: decisionAux(commit)})
	if err == nil {
		err = l.wal.Sync()
	}
	if err != nil {
		return false, err
	}
	l.decisions[id] = commit
	return commit, nil
}

// PresumeAbort appends an abort decision without syncing (recovery batches
// its presumed aborts under the final Sync). First writer wins, as in
// Decide.
func (l *LocalLog) PresumeAbort(ctx context.Context, id string) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prior, ok := l.decisions[id]; ok {
		return prior, nil
	}
	if _, err := l.wal.Append(wal.Record{Type: wal.RecDecision, TxnID: id, Aux: "abort"}); err != nil {
		return false, err
	}
	l.decisions[id] = false
	return false, nil
}

// Snapshot reads the whole log back. Only BEGIN and DECISION records are
// legal in a coordinator log; anything else means this is a site's log or
// a corrupt one, and recovering from it would presume-abort transactions
// that were never ours.
func (l *LocalLog) Snapshot(ctx context.Context) ([]BeginRecord, map[string]bool, error) {
	records, err := l.wal.Records()
	if err != nil {
		return nil, nil, err
	}
	var begun []BeginRecord
	decisions := make(map[string]bool)
	for _, rec := range records {
		switch rec.Type {
		case wal.RecBegin:
			sites, marking := splitBeginAux(rec.Aux)
			begun = append(begun, BeginRecord{TxnID: rec.TxnID, Sites: sites, Marking: marking})
		case wal.RecDecision:
			decisions[rec.TxnID] = rec.Aux == "commit"
		default:
			return nil, nil, fmt.Errorf("coord %s: unexpected %v record (LSN %d) in coordinator log",
				l.name, rec.Type, rec.LSN)
		}
	}
	// Seed the first-writer-wins map so post-recovery Decide calls for
	// already-logged transactions adopt rather than duplicate.
	l.mu.Lock()
	for id, commit := range decisions {
		if _, ok := l.decisions[id]; !ok {
			l.decisions[id] = commit
		}
	}
	l.mu.Unlock()
	return begun, decisions, nil
}

// Sync flushes the underlying log.
func (l *LocalLog) Sync(ctx context.Context) error { return l.wal.Sync() }

// Close is a no-op: the wal.Log belongs to whoever constructed it.
func (l *LocalLog) Close() error { return nil }

var _ DecisionLog = (*LocalLog)(nil)
