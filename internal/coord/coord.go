// Package coord implements the coordinator of the commit protocols: it
// decomposes global transactions into subtransactions, ships them to the
// participating sites, runs the vote and decision rounds of 2PC/O2PC, logs
// decisions for recovery, answers in-doubt Resolve inquiries, and hosts the
// marking Board that aggregates UDUM1 witnesses.
//
// The coordinator deliberately uses the same message pattern for every
// protocol variant — ExecRequest, VoteRequest, Decision per participant —
// so that the message census of experiment E6 compares like with like and
// reproduces the paper's "no extra messages" claim.
package coord

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/marking"
	"o2pc/internal/metrics"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/sim"
	"o2pc/internal/trace"
	"o2pc/internal/wal"
)

// SubtxnSpec is one site's share of a global transaction.
type SubtxnSpec struct {
	// Site is the participant's node name.
	Site string
	// Ops is the operation list shipped to the site.
	Ops []proto.Operation
	// Comp selects the compensation mode; CompNone marks a real action
	// (the site will retain locks until the decision even under O2PC).
	Comp proto.CompMode
	// Compensator names a registered custom compensator for CompCustom.
	Compensator string
}

// TxnSpec describes a global transaction.
type TxnSpec struct {
	// ID optionally fixes the transaction's node ID; when empty the
	// coordinator assigns "T<n>" (with its configured prefix).
	ID string
	// Protocol selects 2PC or O2PC.
	Protocol proto.Protocol
	// Marking selects the correctness protocol layered over O2PC.
	Marking proto.MarkProtocol
	// Subtxns lists the per-site work, executed in order (marking state
	// accumulates site by site, as rule R1 requires).
	Subtxns []SubtxnSpec
	// MarkingRetries bounds retries of a retryable R1 rejection before the
	// transaction is aborted. Defaults to 3.
	MarkingRetries int
}

// Outcome classifies how a global transaction ended.
type Outcome uint8

const (
	// Committed means every site voted YES and the decision was commit.
	Committed Outcome = iota + 1
	// AbortedVote means at least one site voted NO.
	AbortedVote
	// AbortedExec means a subtransaction failed during execution (site
	// autonomy, constraint violation, deadlock victim, or site crash).
	AbortedExec
	// AbortedMarking means the R1 compatibility check rejected the
	// transaction unresolvably.
	AbortedMarking
	// AbortedCoordinator means the coordinator failed before deciding and
	// presumed abort during recovery.
	AbortedCoordinator
	// AbortedClient means the client abandoned a multi-shot session
	// (Session.Abort) and the coordinator decided abort on its behalf.
	AbortedClient
)

// String returns the outcome mnemonic.
func (o Outcome) String() string {
	switch o {
	case Committed:
		return "committed"
	case AbortedVote:
		return "aborted-vote"
	case AbortedExec:
		return "aborted-exec"
	case AbortedMarking:
		return "aborted-marking"
	case AbortedCoordinator:
		return "aborted-coordinator"
	case AbortedClient:
		return "aborted-client"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Result reports one global transaction's execution.
type Result struct {
	ID      string
	Outcome Outcome
	Reads   map[string]map[string][]byte // site -> key -> value
	Latency time.Duration
	Err     error
	// MarkRetries counts retryable R1 rejections absorbed along the way.
	MarkRetries int
}

// Committed reports whether the transaction committed.
func (r Result) Committed() bool { return r.Outcome == Committed }

// CrashPhase identifies coordinator crash-injection points.
type CrashPhase uint8

const (
	// CrashAfterVotes fires after all votes are collected, before the
	// decision is logged — recovery presumes abort.
	CrashAfterVotes CrashPhase = iota + 1
	// CrashAfterDecisionLogged fires after the decision is durable but
	// before any participant learns it — recovery re-sends it.
	CrashAfterDecisionLogged
)

// Stats aggregates coordinator measurements.
type Stats struct {
	Commits        *metrics.Counter
	Aborts         *metrics.Counter
	MarkingAborts  *metrics.Counter
	MarkingRetries *metrics.Counter
	// InFlight tracks global transactions between Run entry and
	// resolution — a gauge, not a counter: it falls as runs finish.
	InFlight      *metrics.Gauge
	Latency       *metrics.Histogram // ms, all outcomes
	CommitLatency *metrics.Histogram // ms, committed only

	// Per-phase spans of the commit round (all ms). PhaseCollect is the
	// coordinator's collect window — first VOTE-REQ sent until the last
	// vote (or first NO) is in, i.e. vote→decision; PhaseDeliver is
	// decision logged until every participant acked (decision→ack).
	PhaseCollect *metrics.Histogram
	PhaseDeliver *metrics.Histogram

	// voteRTT holds one histogram per participant measuring the
	// prepare→vote round trip (VOTE-REQ send to vote reply receipt).
	// Sites appear lazily as they first vote, so access is guarded.
	mu      sync.Mutex
	voteRTT map[string]*metrics.Histogram
}

func newStats() *Stats {
	return &Stats{
		Commits:        &metrics.Counter{},
		Aborts:         &metrics.Counter{},
		MarkingAborts:  &metrics.Counter{},
		MarkingRetries: &metrics.Counter{},
		InFlight:       &metrics.Gauge{},
		Latency:        metrics.NewHistogram(),
		CommitLatency:  metrics.NewHistogram(),
		PhaseCollect:   metrics.NewHistogram(),
		PhaseDeliver:   metrics.NewHistogram(),
		voteRTT:        make(map[string]*metrics.Histogram),
	}
}

// VoteRTT returns the prepare→vote round-trip histogram for one site,
// creating it on first use.
func (s *Stats) VoteRTT(site string) *metrics.Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.voteRTT[site]
	if !ok {
		h = metrics.NewHistogram()
		s.voteRTT[site] = h
	}
	return h
}

// voteRTTSites returns the sites with a vote-RTT histogram, sorted so
// Publish output stays deterministic.
func (s *Stats) voteRTTSites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	sites := make([]string, 0, len(s.voteRTT))
	for site := range s.voteRTT {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	return sites
}

// Publish adopts every instrument into reg under prefixed Prometheus-style
// names, for text exposition via Registry.WriteText. Per-site vote-RTT
// histograms appear lazily, so live scrapers should re-Publish on each
// collection (Adopt replaces, making this idempotent).
func (s *Stats) Publish(reg *metrics.Registry, prefix string) {
	reg.Adopt(prefix+"commits_total", s.Commits)
	reg.Adopt(prefix+"aborts_total", s.Aborts)
	reg.Adopt(prefix+"marking_aborts_total", s.MarkingAborts)
	reg.Adopt(prefix+"marking_retries_total", s.MarkingRetries)
	reg.Adopt(prefix+"inflight_txns", s.InFlight)
	reg.Adopt(prefix+"latency_ms", s.Latency)
	reg.Adopt(prefix+"commit_latency_ms", s.CommitLatency)
	reg.Adopt(prefix+"phase_vote_decision_ms", s.PhaseCollect)
	reg.Adopt(prefix+"phase_decision_ack_ms", s.PhaseDeliver)
	reg.SetHelp(prefix+"phase_vote_decision_ms", "coordinator collect window: first VOTE-REQ sent to decision reached")
	reg.SetHelp(prefix+"phase_decision_ack_ms", "decision logged to last participant ack")
	reg.SetHelp(prefix+"phase_prepare_vote_ms", "per-site VOTE-REQ send to vote reply receipt")
	for _, site := range s.voteRTTSites() {
		reg.Adopt(prefix+metrics.Label("phase_prepare_vote_ms", "site", site), s.VoteRTT(site))
	}
}

// decided tracks a logged decision and its undelivered participants.
type decided struct {
	commit bool
	// trackMarks is set for aborts under protocol P1: Marked flags on the
	// acks feed the UDUM1 board, and the marked-site set is finalized once
	// every participant has acked.
	trackMarks bool
	pending    map[string]bool // sites not yet acked
}

// Config parameterizes a Coordinator.
type Config struct {
	// Name is the coordinator's node name.
	Name string
	// IDPrefix prefixes generated transaction IDs (distinct coordinators
	// in one cluster must use distinct prefixes).
	IDPrefix string
	// Recorder, when non-nil, receives global fate events.
	Recorder *history.Recorder
	// Board aggregates UDUM1 witnesses; share one Board among the
	// coordinators of a cluster.
	Board *marking.Board
	// Log stores decisions durably (defaults to an in-memory WAL). Ignored
	// when DecisionLog is set.
	Log wal.Log
	// DecisionLog overrides the decision-durability layer. Nil selects a
	// LocalLog over Log — the classic single-coordinator behavior. A
	// replog.Leader here turns the coordinator into the leader of a Paxos
	// Commit group: decisions are chosen by a majority of decision-log
	// replicas before any participant learns them.
	DecisionLog DecisionLog
	// DecisionRetry is the delay between decision re-sends to unreachable
	// participants. Defaults to 2ms.
	DecisionRetry time.Duration
	// MarkingRetryDelay is the backoff before retrying a retryable R1
	// rejection. Defaults to 1ms.
	MarkingRetryDelay time.Duration
	// ParallelExec fans the execution phase of unmarked (MarkNone)
	// transactions out to their sites concurrently, one chain per site,
	// instead of shipping subtransactions sequentially. This collapses the
	// execution round from the sum of the per-site latencies to their
	// maximum — a clear win when network latency dominates — but it gives
	// up the deterministic site-order lock acquisition the sequential path
	// provides, so under high data contention with negligible latency it
	// trades throughput for distributed-deadlock timeouts. Off by default.
	// Marked transactions always execute sequentially: rule R1 threads the
	// accumulating transmark state from site to site.
	ParallelExec bool
	// ExecWorkers, when positive, runs the coordinator's per-site fan-out
	// for the execution and vote phases on a bounded pool of that many
	// reusable workers instead of a fresh goroutine per site per phase. At
	// high concurrency the per-phase spawns dominate the profile via
	// goroutine stack growth; pooled workers keep their stacks. Only those
	// two phases qualify: their site handlers are bounded by the lock
	// timeout, so a worker is never parked indefinitely. Decision delivery
	// stays spawn-per-site — it retries until acked and can block
	// unboundedly (crashed site, compensation waiting on another pending
	// decision's locks), which on a bounded pool would let stuck
	// deliveries starve or deadlock the ones that would unstick them.
	// Zero keeps the spawn-per-phase behavior everywhere.
	ExecWorkers int
	// Clock supplies the coordinator's notion of time (retry delays,
	// latency measurement, background delivery). Nil defaults to the real
	// clock.
	Clock sim.Clock
	// Tracer, when non-nil, records the coordinator's protocol steps
	// (txn begin, vote round, decision, delivery) and its WAL writes.
	Tracer *trace.Tracer
}

// Coordinator drives global transactions.
type Coordinator struct {
	cfg    Config
	caller rpc.Caller
	board  *marking.Board
	dlog   DecisionLog
	stats  *Stats
	clock  sim.Clock
	tracer *trace.Tracer
	pool   *sim.Pool // nil unless Config.ExecWorkers > 0

	mu      sync.Mutex
	seq     uint64
	decided map[string]*decided
	started map[string][]string // txn -> exec sites (for presumed abort)
	crashed bool
	crash   func(txnID string, phase CrashPhase) bool
}

// New assembles a coordinator over the given transport.
func New(cfg Config, caller rpc.Caller) *Coordinator {
	if cfg.DecisionRetry <= 0 {
		cfg.DecisionRetry = 2 * time.Millisecond
	}
	if cfg.MarkingRetryDelay <= 0 {
		cfg.MarkingRetryDelay = time.Millisecond
	}
	board := cfg.Board
	if board == nil {
		board = marking.NewBoard()
	}
	dlog := cfg.DecisionLog
	if dlog == nil {
		log := cfg.Log
		if log == nil {
			log = wal.NewMemoryLog()
		}
		dlog = NewLocalLog(cfg.Name, trace.WrapLog(log, cfg.Tracer, cfg.Name))
	}
	var pool *sim.Pool
	if cfg.ExecWorkers > 0 {
		pool = sim.NewPool(sim.OrReal(cfg.Clock), cfg.ExecWorkers)
	}
	return &Coordinator{
		cfg:     cfg,
		caller:  caller,
		board:   board,
		dlog:    dlog,
		stats:   newStats(),
		clock:   sim.OrReal(cfg.Clock),
		tracer:  cfg.Tracer,
		pool:    pool,
		decided: make(map[string]*decided),
		started: make(map[string][]string),
	}
}

// Name returns the coordinator's node name.
func (c *Coordinator) Name() string { return c.cfg.Name }

// Close releases the coordinator's worker pool (a no-op without
// ExecWorkers). In-flight fan-outs finish; pooled work submitted after
// Close degrades to plain goroutines.
func (c *Coordinator) Close() {
	if c.pool != nil {
		c.pool.Close()
	}
	// The decision log may hold implementation resources (a replicated
	// log's bookkeeping); the underlying WAL, if any, stays open — it
	// belongs to whoever passed it in.
	_ = c.dlog.Close()
}

// Stats returns the coordinator's counters.
func (c *Coordinator) Stats() *Stats { return c.stats }

// Board returns the shared marking board.
func (c *Coordinator) Board() *marking.Board { return c.board }

// SetCrashInjector installs a crash predicate consulted at the two
// injection points. A true return crashes the coordinator: every in-flight
// and subsequent Run fails with ErrCrashed until Recover.
func (c *Coordinator) SetCrashInjector(f func(txnID string, phase CrashPhase) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crash = f
}

// ErrCrashed is returned while the coordinator is crashed.
var ErrCrashed = errors.New("coord: coordinator crashed")

// Crashed reports whether the coordinator is currently crashed.
func (c *Coordinator) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Health reports whether the coordinator can make progress: nil when up,
// ErrCrashed while crashed. The ops server's /healthz maps nil to 200.
func (c *Coordinator) Health() error {
	if c.Crashed() {
		return ErrCrashed
	}
	return nil
}

// Ready extends Health with a decision-log probe: a coordinator whose WAL
// cannot sync must not be offered traffic (it would crash on the first
// decision). With a replicated decision log the probe reports leadership —
// a deposed or unelected leader is unready — so the ops server's /readyz
// reflects leader status. Nil maps to 200.
func (c *Coordinator) Ready() error {
	if err := c.Health(); err != nil {
		return err
	}
	if err := c.dlog.Sync(context.Background()); err != nil {
		return fmt.Errorf("coord: decision log not writable: %w", err)
	}
	return nil
}

// Handle implements rpc.Handler for the coordinator node (Resolve
// inquiries from blocked participants).
func (c *Coordinator) Handle(ctx context.Context, from string, req any) (any, error) {
	c.mu.Lock()
	crashed := c.crashed
	c.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	switch m := req.(type) {
	case proto.ResolveRequest:
		c.mu.Lock()
		d, ok := c.decided[m.TxnID]
		c.mu.Unlock()
		if !ok {
			c.tracer.Emit(c.cfg.Name, trace.EvResolveRecv, m.TxnID, from, "unknown")
			return proto.ResolveReply{Known: false}, nil
		}
		c.tracer.Emit(c.cfg.Name, trace.EvResolveRecv, m.TxnID, from, decisionAux(d.commit))
		return proto.ResolveReply{Known: true, Commit: d.commit}, nil
	default:
		return nil, fmt.Errorf("coord %s: unknown message %T", c.cfg.Name, req)
	}
}

// nextID generates a transaction ID.
func (c *Coordinator) nextID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.cfg.IDPrefix + "T" + strconv.FormatUint(c.seq, 10)
}

// writesAt reports whether a subtransaction's ops include a write.
func writesAt(ops []proto.Operation) bool {
	for _, op := range ops {
		if op.Kind != proto.OpRead {
			return true
		}
	}
	return false
}

// execSites lists the sites of a spec, in order.
func execSites(spec TxnSpec) []string {
	out := make([]string, len(spec.Subtxns))
	for i, st := range spec.Subtxns {
		out[i] = st.Site
	}
	return out
}

// writeSites lists the sites where the transaction writes.
func writeSites(spec TxnSpec) []string {
	var out []string
	for _, st := range spec.Subtxns {
		if writesAt(st.Ops) {
			out = append(out, st.Site)
		}
	}
	return out
}

// checkCrash consults the injector and transitions to crashed when it
// fires.
func (c *Coordinator) checkCrash(txnID string, phase CrashPhase) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return true
	}
	if c.crash != nil && c.crash(txnID, phase) {
		c.crashed = true
		c.tracer.Emit(c.cfg.Name, trace.EvCrash, txnID, "", crashPhaseName(phase))
		return true
	}
	return false
}

// crashPhaseName spells a CrashPhase for trace details.
func crashPhaseName(p CrashPhase) string {
	switch p {
	case CrashAfterVotes:
		return "after-votes"
	case CrashAfterDecisionLogged:
		return "after-decision-logged"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}
