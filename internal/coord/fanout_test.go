package coord

import (
	"testing"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/marking"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/site"
	"o2pc/internal/storage"
)

// newFanOutRig builds a rig whose coordinator has ParallelExec enabled.
func newFanOutRig(t *testing.T, nSites int) *rig {
	t.Helper()
	r := &rig{
		net: rpc.NewNetwork(rpc.Config{}),
		rec: history.NewRecorder(),
	}
	for i := 0; i < nSites; i++ {
		name := siteName(i)
		s := site.NewSite(site.Config{Name: name, Recorder: r.rec, ResolvePeriod: 2 * time.Millisecond})
		s.SetCaller(r.net)
		r.net.Register(name, s.Handle)
		r.sites = append(r.sites, s)
	}
	r.coord = New(Config{
		Name: "c0", Recorder: r.rec, Board: marking.NewBoard(),
		ParallelExec: true,
	}, r.net)
	r.net.Register("c0", r.coord.Handle)
	return r
}

// TestFanOutCommit fans an unmarked transaction over three sites and
// checks it commits with the same effects sequential execution produces.
func TestFanOutCommit(t *testing.T) {
	r := newFanOutRig(t, 3)
	r.seed("acct", 100)
	spec := TxnSpec{
		ID: "Tf1", Protocol: proto.O2PC, Marking: proto.MarkNone,
		Subtxns: []SubtxnSpec{
			{Site: siteName(0), Ops: []proto.Operation{proto.AddMin("acct", -30, 0)}, Comp: proto.CompSemantic},
			{Site: siteName(1), Ops: []proto.Operation{proto.Add("acct", 20)}, Comp: proto.CompSemantic},
			{Site: siteName(2), Ops: []proto.Operation{proto.Add("acct", 10)}, Comp: proto.CompSemantic},
		},
	}
	res := r.coord.Run(bg(), spec)
	if res.Outcome != Committed {
		t.Fatalf("outcome = %v err=%v", res.Outcome, res.Err)
	}
	want := []int64{70, 120, 110}
	for i, w := range want {
		if got := r.sites[i].ReadInt64("acct"); got != w {
			t.Fatalf("site %d balance = %d, want %d", i, got, w)
		}
	}
}

// TestFanOutExecFailureAbortsAllSites checks that when one fanned-out
// branch fails, every site that executed is sent the abort decision and
// rolls back.
func TestFanOutExecFailureAbortsAllSites(t *testing.T) {
	r := newFanOutRig(t, 3)
	r.seed("acct", 10)
	spec := TxnSpec{
		ID: "Tf2", Protocol: proto.O2PC, Marking: proto.MarkNone,
		Subtxns: []SubtxnSpec{
			{Site: siteName(0), Ops: []proto.Operation{proto.Add("acct", 5)}, Comp: proto.CompSemantic},
			{Site: siteName(1), Ops: []proto.Operation{proto.AddMin("acct", -50, 0)}, Comp: proto.CompSemantic},
			{Site: siteName(2), Ops: []proto.Operation{proto.Add("acct", 7)}, Comp: proto.CompSemantic},
		},
	}
	res := r.coord.Run(bg(), spec)
	if res.Outcome != AbortedExec {
		t.Fatalf("outcome = %v err=%v", res.Outcome, res.Err)
	}
	waitQuiesce(t, r)
	for i := range r.sites {
		if got := r.sites[i].ReadInt64("acct"); got != 10 {
			t.Fatalf("site %d balance after abort = %d, want 10", i, got)
		}
	}
	if r.rec.Snapshot().FateOf("Tf2") != history.FateAborted {
		t.Fatalf("fate not recorded as aborted")
	}
}

// TestFanOutDuplicateSiteMatchesSequential revisits a site within one
// spec. The protocol allows one subtransaction per site (an ExecRequest
// carries the site's whole op list), so the sequential path rejects the
// revisit with ErrAlreadyExists — the fan-out chains must fail the same
// way and leave no effects behind, not deadlock or double-execute.
func TestFanOutDuplicateSiteMatchesSequential(t *testing.T) {
	spec := func(id string) TxnSpec {
		return TxnSpec{
			ID: id, Protocol: proto.O2PC, Marking: proto.MarkNone,
			Subtxns: []SubtxnSpec{
				{Site: siteName(0), Ops: []proto.Operation{proto.Add("acct", 10)}, Comp: proto.CompSemantic},
				{Site: siteName(1), Ops: []proto.Operation{proto.Add("acct", 1)}, Comp: proto.CompSemantic},
				{Site: siteName(0), Ops: []proto.Operation{proto.AddMin("acct", -15, 0)}, Comp: proto.CompSemantic},
			},
		}
	}
	seq := newRig(t, 2)
	seq.seed("acct", 10)
	seqRes := seq.coord.Run(bg(), spec("Tsq"))

	fan := newFanOutRig(t, 2)
	fan.seed("acct", 10)
	fanRes := fan.coord.Run(bg(), spec("Tf3"))

	if fanRes.Outcome != seqRes.Outcome {
		t.Fatalf("fan-out outcome = %v, sequential = %v", fanRes.Outcome, seqRes.Outcome)
	}
	if fanRes.Outcome != AbortedExec {
		t.Fatalf("outcome = %v err=%v, want aborted-exec", fanRes.Outcome, fanRes.Err)
	}
	waitQuiesce(t, fan)
	for i := range fan.sites {
		if got := fan.sites[i].ReadInt64("acct"); got != 10 {
			t.Fatalf("site %d balance = %d, want 10 (rolled back)", i, got)
		}
	}
}

// TestFanOutMarkedTransactionsStaySequential checks that marked
// transactions still commit under a ParallelExec coordinator: marking
// state threads site to site, so the coordinator must fall back to the
// sequential path for them.
func TestFanOutMarkedTransactionsStaySequential(t *testing.T) {
	r := newFanOutRig(t, 2)
	r.seed("acct", 100)
	res := r.coord.Run(bg(), transfer(r, proto.O2PC, proto.MarkP1, "Tf4", 25))
	if res.Outcome != Committed {
		t.Fatalf("outcome = %v err=%v", res.Outcome, res.Err)
	}
	if r.sites[0].ReadInt64("acct") != 75 || r.sites[1].ReadInt64("acct") != 125 {
		t.Fatalf("balances: %d %d",
			r.sites[0].ReadInt64("acct"), r.sites[1].ReadInt64("acct"))
	}
}

// TestFanOutReadsMerged checks read results from parallel branches are
// all merged into the coordinator's Result.
func TestFanOutReadsMerged(t *testing.T) {
	r := newFanOutRig(t, 3)
	r.seed("acct", 42)
	spec := TxnSpec{
		ID: "Tf5", Protocol: proto.O2PC, Marking: proto.MarkNone,
		Subtxns: []SubtxnSpec{
			{Site: siteName(0), Ops: []proto.Operation{proto.Read("acct")}},
			{Site: siteName(1), Ops: []proto.Operation{proto.Read("acct")}},
			{Site: siteName(2), Ops: []proto.Operation{proto.Read("acct")}},
		},
	}
	res := r.coord.Run(bg(), spec)
	if res.Outcome != Committed {
		t.Fatalf("outcome = %v err=%v", res.Outcome, res.Err)
	}
	for i := 0; i < 3; i++ {
		v, ok := res.Reads[siteName(i)]["acct"]
		if !ok {
			t.Fatalf("read from %s missing from merged results (have %v)", siteName(i), res.Reads)
		}
		n, err := storage.DecodeInt64(v)
		if err != nil || n != 42 {
			t.Fatalf("read from %s = %v (%v), want 42", siteName(i), n, err)
		}
	}
}
