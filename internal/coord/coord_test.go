package coord

import (
	"context"
	"errors"
	"testing"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/marking"
	"o2pc/internal/proto"
	"o2pc/internal/rpc"
	"o2pc/internal/site"
	"o2pc/internal/storage"
)

func bg() context.Context { return context.Background() }

type rig struct {
	net   *rpc.Network
	sites []*site.Site
	coord *Coordinator
	rec   *history.Recorder
}

func newRig(t *testing.T, nSites int) *rig {
	return newRigResolve(t, nSites, 2*time.Millisecond)
}

// newRigResolve is newRig with an explicit site ResolvePeriod, for tests
// whose assertions must not race the decision-inquiry timer.
func newRigResolve(t *testing.T, nSites int, resolvePeriod time.Duration) *rig {
	t.Helper()
	r := &rig{
		net: rpc.NewNetwork(rpc.Config{}),
		rec: history.NewRecorder(),
	}
	for i := 0; i < nSites; i++ {
		name := siteName(i)
		s := site.NewSite(site.Config{Name: name, Recorder: r.rec, ResolvePeriod: resolvePeriod})
		s.SetCaller(r.net)
		r.net.Register(name, s.Handle)
		r.sites = append(r.sites, s)
	}
	r.coord = New(Config{Name: "c0", Recorder: r.rec, Board: marking.NewBoard()}, r.net)
	r.net.Register("c0", r.coord.Handle)
	return r
}

func siteName(i int) string { return string(rune('a'+i)) + "site" }

func (r *rig) seed(key string, v int64) {
	for _, s := range r.sites {
		s.SeedInt64(storage.Key(key), v)
	}
}

func transfer(r *rig, protocol proto.Protocol, marking proto.MarkProtocol, id string, amount int64) TxnSpec {
	return TxnSpec{
		ID:       id,
		Protocol: protocol,
		Marking:  marking,
		Subtxns: []SubtxnSpec{
			{Site: siteName(0), Ops: []proto.Operation{proto.AddMin("acct", -amount, 0)}, Comp: proto.CompSemantic},
			{Site: siteName(1), Ops: []proto.Operation{proto.Add("acct", amount)}, Comp: proto.CompSemantic},
		},
	}
}

func TestRunCommit(t *testing.T) {
	r := newRig(t, 2)
	r.seed("acct", 100)
	res := r.coord.Run(bg(), transfer(r, proto.O2PC, proto.MarkP1, "", 25))
	if res.Outcome != Committed {
		t.Fatalf("outcome = %v err=%v", res.Outcome, res.Err)
	}
	if res.ID != "T1" {
		t.Fatalf("generated ID = %q", res.ID)
	}
	if r.sites[0].ReadInt64("acct") != 75 || r.sites[1].ReadInt64("acct") != 125 {
		t.Fatalf("balances: %d %d", r.sites[0].ReadInt64("acct"), r.sites[1].ReadInt64("acct"))
	}
	if r.coord.Stats().Commits.Value() != 1 {
		t.Fatalf("commit counter = %d", r.coord.Stats().Commits.Value())
	}
}

func TestRunEmptySpec(t *testing.T) {
	r := newRig(t, 1)
	res := r.coord.Run(bg(), TxnSpec{})
	if res.Err == nil {
		t.Fatalf("empty spec accepted")
	}
}

func TestRunVoteAbort(t *testing.T) {
	r := newRig(t, 2)
	r.seed("acct", 100)
	r.sites[1].SetVoteAbortInjector(func(id string) bool { return id == "Tx" })
	res := r.coord.Run(bg(), transfer(r, proto.O2PC, proto.MarkP1, "Tx", 25))
	if res.Outcome != AbortedVote {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	waitQuiesce(t, r)
	if r.sites[0].ReadInt64("acct") != 100 || r.sites[1].ReadInt64("acct") != 100 {
		t.Fatalf("balances after abort: %d %d",
			r.sites[0].ReadInt64("acct"), r.sites[1].ReadInt64("acct"))
	}
	if r.rec.Snapshot().FateOf("Tx") != history.FateAborted {
		t.Fatalf("fate not recorded")
	}
}

func TestRunExecFailureAbortsEarlierSites(t *testing.T) {
	r := newRig(t, 2)
	r.seed("acct", 10)
	// Site 1's AddMin fails (insufficient funds at destination? use a min
	// that the Add violates).
	spec := TxnSpec{
		ID: "Tf", Protocol: proto.O2PC, Marking: proto.MarkP1,
		Subtxns: []SubtxnSpec{
			{Site: siteName(0), Ops: []proto.Operation{proto.Add("acct", 5)}, Comp: proto.CompSemantic},
			{Site: siteName(1), Ops: []proto.Operation{proto.AddMin("acct", -50, 0)}, Comp: proto.CompSemantic},
		},
	}
	res := r.coord.Run(bg(), spec)
	if res.Outcome != AbortedExec {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	waitQuiesce(t, r)
	if r.sites[0].ReadInt64("acct") != 10 {
		t.Fatalf("site0 acct = %d, want rollback to 10", r.sites[0].ReadInt64("acct"))
	}
	// Exec-phase abort: no marks anywhere (nothing was exposed).
	if r.sites[0].Marks().Len() != 0 || r.sites[1].Marks().Len() != 0 {
		t.Fatalf("exec-phase abort left marks")
	}
}

func TestSiteDownDuringExecAborts(t *testing.T) {
	r := newRig(t, 2)
	r.seed("acct", 100)
	r.net.SetDown(siteName(1), true)
	ctx, cancel := context.WithTimeout(bg(), time.Second)
	defer cancel()
	res := r.coord.Run(ctx, transfer(r, proto.O2PC, proto.MarkP1, "Td", 10))
	if res.Outcome == Committed {
		t.Fatalf("committed with a dead participant")
	}
	waitQuiesce(t, r)
	if r.sites[0].ReadInt64("acct") != 100 {
		t.Fatalf("site0 not rolled back: %d", r.sites[0].ReadInt64("acct"))
	}
}

func TestResolveHandler(t *testing.T) {
	r := newRig(t, 2)
	r.seed("acct", 100)
	res := r.coord.Run(bg(), transfer(r, proto.TwoPC, proto.MarkNone, "Tr", 5))
	if !res.Committed() {
		t.Fatalf("setup commit failed")
	}
	raw, err := r.coord.Handle(bg(), "asite", proto.ResolveRequest{TxnID: "Tr"})
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	reply := raw.(proto.ResolveReply)
	if !reply.Known || !reply.Commit {
		t.Fatalf("reply = %+v", reply)
	}
	raw, _ = r.coord.Handle(bg(), "asite", proto.ResolveRequest{TxnID: "ghost"})
	if raw.(proto.ResolveReply).Known {
		t.Fatalf("ghost transaction resolved")
	}
}

func TestCrashAfterVotesPresumesAbortOnRecovery(t *testing.T) {
	r := newRig(t, 2)
	r.seed("acct", 100)
	r.coord.SetCrashInjector(func(id string, phase CrashPhase) bool {
		return id == "Tc" && phase == CrashAfterVotes
	})
	res := r.coord.Run(bg(), transfer(r, proto.O2PC, proto.MarkP1, "Tc", 30))
	if res.Outcome != AbortedCoordinator || !errors.Is(res.Err, ErrCrashed) {
		t.Fatalf("res = %+v", res)
	}
	// O2PC: site0 locally committed and exposed the debit; site1 too.
	if r.sites[0].ReadInt64("acct") != 70 {
		t.Fatalf("site0 = %d, want exposed 70", r.sites[0].ReadInt64("acct"))
	}
	// Recovery presumes abort and compensation restores both.
	if err := r.coord.Recover(bg()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	waitQuiesce(t, r)
	if got := r.sites[0].ReadInt64("acct"); got != 100 {
		t.Fatalf("site0 = %d after presumed abort", got)
	}
	if got := r.sites[1].ReadInt64("acct"); got != 100 {
		t.Fatalf("site1 = %d after presumed abort", got)
	}
}

func TestCrashAfterDecisionLoggedResendsOnRecovery(t *testing.T) {
	r := newRig(t, 2)
	r.seed("acct", 100)
	r.coord.SetCrashInjector(func(id string, phase CrashPhase) bool {
		return id == "Tc" && phase == CrashAfterDecisionLogged
	})
	res := r.coord.Run(bg(), transfer(r, proto.TwoPC, proto.MarkNone, "Tc", 30))
	if res.Outcome != Committed {
		t.Fatalf("res = %+v", res)
	}
	// Decision logged but never delivered: 2PC participants blocked.
	if !r.sites[0].Manager().Locks().HoldsAny("Tc") {
		t.Fatalf("participant not blocked in doubt")
	}
	if err := r.coord.Recover(bg()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	waitFor(t, time.Second, func() bool {
		return !r.sites[0].Manager().Locks().HoldsAny("Tc") &&
			r.sites[0].ReadInt64("acct") == 70
	}, "decision re-delivery")
}

func TestBlockedParticipantResolvesAfterCoordRecovery(t *testing.T) {
	r := newRig(t, 2)
	r.seed("acct", 100)
	r.coord.SetCrashInjector(func(id string, phase CrashPhase) bool {
		return id == "Tc" && phase == CrashAfterDecisionLogged
	})
	r.coord.Run(bg(), transfer(r, proto.TwoPC, proto.MarkNone, "Tc", 30))
	// Instead of Recover pushing, let the participant's Resolve inquiry
	// pull the decision once the coordinator is back (handlers answer as
	// soon as crashed=false).
	r.coord.mu.Lock()
	r.coord.crashed = false
	r.coord.crash = nil
	r.coord.mu.Unlock()
	waitFor(t, 2*time.Second, func() bool {
		return r.sites[0].ReadInt64("acct") == 70
	}, "participant-initiated resolution")
}

func TestMessageCensusIdenticalAcrossProtocols(t *testing.T) {
	// E6 in miniature: committed transactions exchange exactly the same
	// number of messages under 2PC, O2PC, and O2PC+P1.
	counts := func(p proto.Protocol, m proto.MarkProtocol) map[string]int64 {
		// An effectively-disabled resolver: under O2PC a site re-asks for
		// the decision after ResolvePeriod, and on a loaded machine the
		// rig's default 2ms can elapse before the decision lands, adding
		// timing-dependent Resolve traffic to a census of the happy path.
		r := newRigResolve(t, 2, time.Hour)
		r.seed("acct", 1000)
		for i := 0; i < 5; i++ {
			res := r.coord.Run(bg(), transfer(r, p, m, "", 1))
			if !res.Committed() {
				t.Fatalf("%v/%v txn failed: %v", p, m, res.Err)
			}
		}
		out := make(map[string]int64)
		reg := r.net.Counts()
		for _, name := range reg.CounterNames() {
			out[name] = reg.Counter(name).Value()
		}
		return out
	}
	base := counts(proto.TwoPC, proto.MarkNone)
	for _, tc := range []struct {
		p proto.Protocol
		m proto.MarkProtocol
	}{{proto.O2PC, proto.MarkNone}, {proto.O2PC, proto.MarkP1}} {
		got := counts(tc.p, tc.m)
		if len(got) != len(base) {
			t.Fatalf("%v/%v message types differ: %v vs %v", tc.p, tc.m, got, base)
		}
		for name, n := range base {
			if got[name] != n {
				t.Fatalf("%v/%v: %s = %d, want %d (extra messages!)", tc.p, tc.m, name, got[name], n)
			}
		}
	}
}

func TestMarkingRetryCounted(t *testing.T) {
	r := newRig(t, 2)
	r.seed("acct", 100)
	// Pre-mark site1 so a transaction that first visits site0 (adopting
	// nothing) then site1 hits a fatal rejection; first visiting site1
	// adopts the mark and then retries at site0 until giving up.
	r.sites[0].Marks().MarkUndone("Tdead")
	spec := transfer(r, proto.O2PC, proto.MarkP1, "Tm", 5)
	res := r.coord.Run(bg(), spec)
	if res.Outcome != AbortedMarking {
		t.Fatalf("outcome = %v (retries=%d)", res.Outcome, res.MarkRetries)
	}
	if res.MarkRetries == 0 {
		t.Fatalf("no retries recorded before the marking abort")
	}
	if r.coord.Stats().MarkingAborts.Value() != 1 {
		t.Fatalf("marking aborts = %d", r.coord.Stats().MarkingAborts.Value())
	}
}

func waitQuiesce(t *testing.T, r *rig) {
	t.Helper()
	waitFor(t, 2*time.Second, func() bool {
		for _, s := range r.sites {
			if s.Manager().ActiveCount() > 0 {
				return false
			}
		}
		return true
	}, "site quiescence")
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestReadOnlyParticipantsSkipDecisionRound(t *testing.T) {
	// Two rigs: optimization off vs on; the read-only site must receive
	// fewer Decision messages when enabled, with identical outcomes.
	run := func(readOnly bool) (committed bool, decisions int64) {
		r := &rig{net: rpc.NewNetwork(rpc.Config{}), rec: history.NewRecorder()}
		for i := 0; i < 2; i++ {
			name := siteName(i)
			s := site.NewSite(site.Config{Name: name, Recorder: r.rec, ReadOnlyVotes: readOnly})
			s.SetCaller(r.net)
			r.net.Register(name, s.Handle)
			r.sites = append(r.sites, s)
		}
		r.coord = New(Config{Name: "c0", Recorder: r.rec}, r.net)
		r.net.Register("c0", r.coord.Handle)
		r.seed("acct", 100)

		res := r.coord.Run(bg(), TxnSpec{
			Protocol: proto.O2PC,
			Subtxns: []SubtxnSpec{
				{Site: siteName(0), Ops: []proto.Operation{proto.Add("acct", 1)}, Comp: proto.CompSemantic},
				{Site: siteName(1), Ops: []proto.Operation{proto.Read("acct")}, Comp: proto.CompSemantic},
			},
		})
		return res.Committed(), r.net.Counts().Counter("proto.Decision").Value()
	}
	okOff, decOff := run(false)
	okOn, decOn := run(true)
	if !okOff || !okOn {
		t.Fatalf("commit failed: off=%v on=%v", okOff, okOn)
	}
	if decOff != 2 || decOn != 1 {
		t.Fatalf("decisions off=%d (want 2) on=%d (want 1)", decOff, decOn)
	}
}
