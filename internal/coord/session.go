package coord

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"o2pc/internal/history"
	"o2pc/internal/proto"
	"o2pc/internal/trace"
)

// SessionState classifies a multi-shot session's lifecycle.
type SessionState uint8

const (
	// SessionActive means the session accepts further rounds.
	SessionActive SessionState = iota + 1
	// SessionCommitted means Commit ran and the decision was commit.
	SessionCommitted
	// SessionAborted means the session ended in an abort — a failed round,
	// a NO vote at commit, a coordinator crash, or a client Abort.
	SessionAborted
)

// String returns the session-state mnemonic.
func (s SessionState) String() string {
	switch s {
	case SessionActive:
		return "active"
	case SessionCommitted:
		return "committed"
	case SessionAborted:
		return "aborted"
	default:
		return fmt.Sprintf("SessionState(%d)", uint8(s))
	}
}

// SessionSpec describes a multi-shot session: a global transaction whose
// per-site work arrives over several rounds instead of one spec.
type SessionSpec struct {
	// ID optionally fixes the transaction's ID; when empty the coordinator
	// assigns one.
	ID string
	// Protocol selects 2PC or O2PC for the eventual commit point.
	Protocol proto.Protocol
	// Marking selects the correctness protocol layered over O2PC.
	Marking proto.MarkProtocol
	// MarkingRetries bounds retries of a retryable R1 rejection per round.
	// Defaults to 3.
	MarkingRetries int
}

// Session is one open multi-shot transaction. The client issues rounds of
// per-site work (each round a virtual-time RPC exchange, re-admitted by the
// R1 check against the sites' current marking state), then drives the
// ordinary 2PC/O2PC commit point with Commit — or abandons the work with
// Abort. Sites keep the transaction's data locks across rounds, so under
// O2PC nothing is exposed until the YES votes; what a longer session does
// stretch is the window in which OTHER transactions' exposed data can be
// read and marked data can accumulate under the session's feet.
//
// A Session is driven by a single client goroutine and is not safe for
// concurrent use; the coordinator it runs on remains fully concurrent.
type Session struct {
	c    *Coordinator
	id   string
	spec SessionSpec

	start time.Time
	state SessionState
	round int

	executed   []string // sites visited, in first-visit order
	seen       map[string]bool
	transmarks []string
	visited    bool
	retries    int

	res Result // final result, valid once the session leaves SessionActive
}

// OpenSession opens a multi-shot session. The BEGIN record is logged
// immediately (with the — still empty — participant list) so a coordinator
// crash at any later point presumes abort for the session; every round that
// grows the participant set re-logs the BEGIN, which recovery reads as an
// overwrite (last record wins).
func (c *Coordinator) OpenSession(spec SessionSpec) (*Session, error) {
	id := spec.ID
	if id == "" {
		id = c.nextID()
	}
	retries := spec.MarkingRetries
	if retries == 0 {
		retries = 3
	}
	c.mu.Lock()
	crashed := c.crashed
	if !crashed {
		c.started[id] = nil
	}
	c.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	if rec := c.cfg.Recorder; rec != nil {
		rec.Declare(id, history.KindGlobal, "")
	}
	c.tracer.Emit(c.cfg.Name, trace.EvTxnBegin, id, "",
		spec.Protocol.String()+"/"+spec.Marking.String()+" session")
	c.tracer.Emit(c.cfg.Name, trace.EvSessionOpen, id, "", "")
	if err := c.dlog.Begin(context.Background(), id, nil, spec.Marking); err != nil {
		return nil, fmt.Errorf("coord: logging session begin for %s: %w", id, err)
	}
	c.stats.InFlight.Inc()
	return &Session{
		c:       c,
		id:      id,
		spec:    spec,
		start:   c.clock.Now(),
		state:   SessionActive,
		seen:    make(map[string]bool),
		retries: retries,
	}, nil
}

// ID returns the session's global transaction ID.
func (s *Session) ID() string { return s.id }

// State returns the session's current lifecycle state.
func (s *Session) State() SessionState { return s.state }

// Round ships one round of per-site work. New sites join the session (the
// durable participant list is re-logged first, so presumed abort reaches
// them after a crash); sites already visited get the round as a
// continuation of their open subtransaction. Subtransactions ship
// sequentially, threading the accumulated transmarks exactly as rule R1
// requires of the one-shot path. The returned map carries this round's
// OpRead results per site.
//
// A failed round aborts the session: the coordinator decides abort for
// every participant (including the failing site) and the session leaves
// SessionActive — Commit afterwards just reports the stored Result.
func (s *Session) Round(ctx context.Context, subtxns []SubtxnSpec) (map[string]map[string][]byte, error) {
	if s.state != SessionActive {
		return nil, fmt.Errorf("coord: session %s: round on %s session", s.id, s.state)
	}
	if len(subtxns) == 0 {
		return nil, fmt.Errorf("coord: session %s: empty round", s.id)
	}
	c := s.c
	if c.Crashed() {
		// The process is gone: no decision can be made here. Recovery will
		// presume abort from the logged BEGIN.
		s.settle(Result{ID: s.id, Outcome: AbortedCoordinator, Err: ErrCrashed})
		return nil, ErrCrashed
	}
	s.round++

	// Grow the durable participant list before any new site executes: if
	// the coordinator dies after the site does work but before the next
	// BEGIN lands, recovery must still know to send it the presumed abort.
	grew := false
	for _, st := range subtxns {
		if !s.seen[st.Site] {
			s.seen[st.Site] = true
			s.executed = append(s.executed, st.Site)
			grew = true
		}
	}
	if grew {
		if err := c.dlog.Begin(ctx, s.id, s.executed, s.spec.Marking); err != nil {
			s.settle(Result{ID: s.id, Outcome: AbortedCoordinator,
				Err: fmt.Errorf("coord: logging session sites for %s: %w", s.id, err)})
			return nil, s.res.Err
		}
		c.mu.Lock()
		if _, ok := c.started[s.id]; ok {
			c.started[s.id] = append([]string(nil), s.executed...)
		}
		c.mu.Unlock()
	}

	c.tracer.Emit(c.cfg.Name, trace.EvSessionRound, s.id, "",
		"round="+strconv.Itoa(s.round)+" sites="+joinSites(s.executed))
	res := Result{ID: s.id}
	var reads map[string]map[string][]byte
	for _, st := range subtxns {
		req := proto.ExecRequest{
			TxnID:       s.id,
			Ops:         st.Ops,
			Comp:        st.Comp,
			Compensator: st.Compensator,
			Protocol:    s.spec.Protocol,
			Marking:     s.spec.Marking,
			TransMarks:  s.transmarks,
			Visited:     s.visited,
			Round:       s.round,
		}
		reply, err := c.execWithRetry(ctx, s.id, st.Site, req, s.retries, &res)
		if err != nil {
			res.Err = err
			if res.Outcome == 0 {
				res.Outcome = AbortedExec
			}
			res.MarkRetries += s.res.MarkRetries
			res.Reads = s.res.Reads
			// Every site of the round — including the failing one, which may
			// have applied the round even though the reply was lost — is in
			// s.executed: the participant list grew before anything shipped.
			c.decide(ctx, s.id, false, s.executed, TxnSpec{Protocol: s.spec.Protocol, Marking: s.spec.Marking})
			s.settle(res)
			return nil, err
		}
		if len(reply.Reads) > 0 {
			if reads == nil {
				reads = make(map[string]map[string][]byte)
			}
			reads[st.Site] = reply.Reads
		}
		s.transmarks = reply.Marks
		s.visited = true
	}
	s.res.MarkRetries += res.MarkRetries
	if len(reads) > 0 {
		if s.res.Reads == nil {
			s.res.Reads = make(map[string]map[string][]byte)
		}
		for site, kv := range reads {
			if s.res.Reads[site] == nil {
				s.res.Reads[site] = make(map[string][]byte)
			}
			for k, v := range kv {
				s.res.Reads[site][k] = v
			}
		}
	}
	return reads, nil
}

// Commit drives the ordinary commit point over every site the session
// visited: the parallel vote round, then the decision. On a session that
// already left SessionActive it just returns the stored Result.
func (s *Session) Commit(ctx context.Context) Result {
	if s.state != SessionActive {
		return s.res
	}
	res := Result{ID: s.id, Reads: s.res.Reads, MarkRetries: s.res.MarkRetries}
	if len(s.executed) == 0 {
		// An empty session commits vacuously: nothing executed anywhere.
		// decide still runs so the coordinator's in-memory state (decided
		// set, started bookkeeping) matches the reported outcome.
		res.Outcome = Committed
		s.c.decide(ctx, s.id, true, nil, TxnSpec{Protocol: s.spec.Protocol, Marking: s.spec.Marking})
		s.settle(res)
		return s.res
	}
	spec := TxnSpec{Protocol: s.spec.Protocol, Marking: s.spec.Marking}
	s.c.finishCommit(ctx, s.id, append([]string(nil), s.executed...), spec, &res)
	s.settle(res)
	return s.res
}

// Abort abandons the session: the coordinator decides abort for every
// visited site (their open subtransactions roll back; nothing was exposed,
// since no vote round ever ran). Idempotent once the session is settled.
func (s *Session) Abort(ctx context.Context) Result {
	if s.state != SessionActive {
		return s.res
	}
	res := Result{ID: s.id, Outcome: AbortedClient, MarkRetries: s.res.MarkRetries}
	s.c.decide(ctx, s.id, false, append([]string(nil), s.executed...),
		TxnSpec{Protocol: s.spec.Protocol, Marking: s.spec.Marking})
	s.settle(res)
	return s.res
}

// settle finalizes the session with Run's accounting: latency and outcome
// counters, the outcome trace event, and the in-flight gauge.
func (s *Session) settle(res Result) {
	c := s.c
	if s.state != SessionActive {
		return
	}
	if res.Outcome == Committed {
		s.state = SessionCommitted
	} else {
		s.state = SessionAborted
	}
	s.res = res
	c.stats.InFlight.Dec()
	s.res.Latency = c.clock.Since(s.start)
	c.stats.Latency.ObserveDuration(s.res.Latency)
	switch s.res.Outcome {
	case Committed:
		c.stats.Commits.Inc()
		c.stats.CommitLatency.ObserveDuration(s.res.Latency)
	case AbortedMarking:
		c.stats.MarkingAborts.Inc()
		c.stats.Aborts.Inc()
	default:
		c.stats.Aborts.Inc()
	}
	c.tracer.Emit(c.cfg.Name, trace.EvTxnOutcome, s.id, "", s.res.Outcome.String())
}
