// Package ops is the live operations plane of the cluster binaries: a
// stdlib net/http server exposing the Prometheus text rendering of a
// metrics.Registry, liveness/readiness probes wired to the node's
// crash/recover epoch, the runtime's pprof profiles, build/config vars,
// and a JSONL tail of the bounded trace ring.
//
// Endpoints:
//
//	GET /metrics        Prometheus text exposition (Registry.WriteText)
//	GET /healthz        200 "ok" while the node is up, 503 + reason otherwise
//	GET /readyz         healthz plus a WAL-writability probe
//	GET /debug/pprof/*  CPU, heap, goroutine, block, mutex profiles
//	GET /debug/vars     build info, node config vars as JSON
//	GET /trace/recent   retained trace events as JSONL; ?drain=1 empties
//	                    the ring so repeated calls tail the live stream
//
// The package is the one place outside internal/sim, examples/ and
// cmd/o2pc-bench where wall-clock time is legal (the o2pcvet walltime
// analyzer allowlists it): the live sampler and uptime reporting are
// meaningful only in wall time, and nothing here runs under the virtual
// clock. Protocol metrics themselves are observed by coord/site through
// the injected sim.Clock, so deterministic virtual-time runs never touch
// this package.
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"o2pc/internal/metrics"
	"o2pc/internal/trace"
)

// CheckFunc probes one aspect of node health; nil means healthy.
type CheckFunc func() error

// Config wires a Server to its node.
type Config struct {
	// Node names the node for /debug/vars and log lines.
	Node string
	// Registry is rendered by /metrics. Required.
	Registry *metrics.Registry
	// Collect, when non-nil, runs before every /metrics render — the hook
	// where a node re-Publishes its Stats so lazily created series (e.g.
	// per-site vote-RTT histograms) appear on the next scrape.
	Collect func(*metrics.Registry)
	// Health backs /healthz; a nil func means always healthy.
	Health CheckFunc
	// Ready backs /readyz; a nil func falls back to Health.
	Ready CheckFunc
	// Tracer, when non-nil, backs /trace/recent.
	Tracer *trace.Tracer
	// Vars is merged into /debug/vars (flag values, seeds, config).
	Vars map[string]any
	// Sample enables the live runtime sampler: goroutine and heap gauges
	// (ops_* names) refreshed on every scrape and every SamplePeriod.
	// Leave it off in deterministic runs — the gauges read the real
	// runtime and would differ run to run.
	Sample bool
	// SamplePeriod is the background sampling interval; 0 means 5s.
	SamplePeriod time.Duration
}

// Server serves the operations plane for one node. Create with NewServer,
// then either Start (own listener, background goroutine) or mount
// Handler on an existing server.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	start   time.Time
	sampler *sampler

	mu       sync.Mutex
	httpSrv  *http.Server
	addr     string
	stopTick chan struct{}
}

// NewServer builds the ops plane for a node. cfg.Registry must be set.
func NewServer(cfg Config) *Server {
	if cfg.Registry == nil {
		panic("ops: Config.Registry is required")
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	if cfg.Sample {
		s.sampler = newSampler(cfg.Registry)
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", checkHandler(cfg.Health))
	ready := cfg.Ready
	if ready == nil {
		ready = cfg.Health
	}
	s.mux.HandleFunc("GET /readyz", checkHandler(ready))
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /trace/recent", s.handleTrace)
	// pprof.Index dispatches /debug/pprof/<name> to every runtime profile
	// (heap, goroutine, block, mutex, allocs, threadcreate); the four
	// below need their own handlers.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the ops plane as an http.Handler (tests, embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("host:port", port 0 for ephemeral) and serves in
// a background goroutine until Shutdown. It returns the bound address.
// When sampling is enabled, block/mutex profiling rates are switched on
// for the server's lifetime and a background sampler keeps the ops_*
// gauges fresh between scrapes.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.httpSrv = srv
	s.addr = ln.Addr().String()
	s.mu.Unlock()
	go func() {
		// ErrServerClosed is the normal Shutdown path; anything else has
		// already surfaced to clients as failed scrapes.
		_ = srv.Serve(ln)
	}()
	if s.sampler != nil {
		s.sampler.enableProfiles()
		stop := make(chan struct{})
		s.mu.Lock()
		s.stopTick = stop
		s.mu.Unlock()
		period := s.cfg.SamplePeriod
		if period <= 0 {
			period = 5 * time.Second
		}
		go func() {
			t := time.NewTicker(period)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					s.sampler.sample(time.Since(s.start))
				}
			}
		}()
	}
	return s.addr, nil
}

// Addr returns the bound address after Start ("" before).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Shutdown gracefully stops the server: in-flight scrapes finish, the
// sampler stops, and profiling rates are restored. Safe to call without a
// prior Start (no-op) and at most once after one.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	stop := s.stopTick
	s.httpSrv = nil
	s.stopTick = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if s.sampler != nil {
		s.sampler.disableProfiles()
	}
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Collect != nil {
		s.cfg.Collect(s.cfg.Registry)
	}
	if s.sampler != nil {
		s.sampler.sample(time.Since(s.start))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Write errors mean the scraper went away mid-response; there is no
	// one left to report them to.
	_ = s.cfg.Registry.WriteText(w)
}

// checkHandler renders a CheckFunc as 200 "ok" / 503 + reason.
func checkHandler(check CheckFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	}
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	vars := map[string]any{
		"node":     s.cfg.Node,
		"pid":      os.Getpid(),
		"go":       runtime.Version(),
		"uptime_s": time.Since(s.start).Seconds(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		build := map[string]string{"path": bi.Path}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified", "GOARCH", "GOOS":
				build[kv.Key] = kv.Value
			}
		}
		vars["build"] = build
	}
	if len(s.cfg.Vars) > 0 {
		vars["config"] = s.cfg.Vars
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json sorts map keys, so the rendering is deterministic.
	_ = enc.Encode(vars)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Tracer == nil {
		http.Error(w, "no tracer configured", http.StatusNotFound)
		return
	}
	var events []trace.Event
	if r.URL.Query().Get("drain") == "1" {
		events = s.cfg.Tracer.Drain()
	} else {
		events = s.cfg.Tracer.Events()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = trace.WriteJSONL(w, events)
}
