package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"o2pc/internal/metrics"
	"o2pc/internal/sim"
	"o2pc/internal/site"
	"o2pc/internal/trace"
	"o2pc/internal/wal"
)

// get serves one request through the ops handler and returns the recorder.
func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("static_total").Add(7)
	collected := 0
	s := NewServer(Config{
		Node:     "n0",
		Registry: reg,
		Collect: func(r *metrics.Registry) {
			collected++
			// Lazily appearing series must show up on the scrape that
			// collected them — the per-site vote-RTT pattern.
			r.Counter(metrics.Label("late_total", "site", fmt.Sprintf("s%d", collected))).Inc()
		},
	})
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"static_total 7", `late_total{site="s1"} 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
	if collected != 1 {
		t.Fatalf("collect ran %d times, want 1", collected)
	}
	if got := get(t, s, "/metrics").Body.String(); !strings.Contains(got, `late_total{site="s2"}`) {
		t.Fatalf("second scrape did not re-collect:\n%s", got)
	}
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	var health, ready error
	s := NewServer(Config{
		Registry: metrics.NewRegistry(),
		Health:   func() error { return health },
		Ready:    func() error { return ready },
	})
	if rec := get(t, s, "/healthz"); rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Fatalf("healthy: %d %q", rec.Code, rec.Body.String())
	}
	health = fmt.Errorf("site: crashed")
	if rec := get(t, s, "/healthz"); rec.Code != 503 || !strings.Contains(rec.Body.String(), "crashed") {
		t.Fatalf("unhealthy: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, s, "/readyz"); rec.Code != 200 {
		t.Fatalf("ready while unhealthy should still consult Ready only: %d", rec.Code)
	}
	ready = fmt.Errorf("wal: disk full")
	if rec := get(t, s, "/readyz"); rec.Code != 503 {
		t.Fatalf("unready: %d", rec.Code)
	}
}

func TestReadyFallsBackToHealth(t *testing.T) {
	s := NewServer(Config{
		Registry: metrics.NewRegistry(),
		Health:   func() error { return fmt.Errorf("down") },
	})
	if rec := get(t, s, "/readyz"); rec.Code != 503 {
		t.Fatalf("readyz without Ready func should fall back to Health: %d", rec.Code)
	}
}

func TestVarsEndpoint(t *testing.T) {
	s := NewServer(Config{
		Node:     "s0",
		Registry: metrics.NewRegistry(),
		Vars:     map[string]any{"listen": "127.0.0.1:7101", "wal": "memory"},
	})
	rec := get(t, s, "/debug/vars")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("vars not JSON: %v\n%s", err, rec.Body.String())
	}
	if vars["node"] != "s0" {
		t.Fatalf("node = %v", vars["node"])
	}
	cfg, ok := vars["config"].(map[string]any)
	if !ok || cfg["wal"] != "memory" {
		t.Fatalf("config = %v", vars["config"])
	}
}

func TestPprofEndpoints(t *testing.T) {
	s := NewServer(Config{Registry: metrics.NewRegistry()})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/goroutine"} {
		if rec := get(t, s, path); rec.Code != 200 || rec.Body.Len() == 0 {
			t.Fatalf("%s: %d (%d bytes)", path, rec.Code, rec.Body.Len())
		}
	}
}

// emitScript replays a fixed protocol-shaped event sequence under a fresh
// virtual clock. Two invocations must produce byte-identical traces.
func emitScript(t *testing.T) *trace.Tracer {
	t.Helper()
	clk := sim.NewVirtualClock()
	tr := trace.New(clk, 64)
	g := sim.NewGroup(clk)
	g.Go(func() {
		ctx := context.Background()
		tr.Emit("c0", trace.EvTxnBegin, "T1", "", "")
		tr.Emit("c0", trace.EvVoteReqSend, "T1", "s0", "")
		_ = clk.Sleep(ctx, 3*time.Millisecond)
		tr.Emit("s0", trace.EvVoteYes, "T1", "c0", "")
		tr.Emit("s0", trace.EvExposed, "T1", "", "")
		_ = clk.Sleep(ctx, 2*time.Millisecond)
		tr.Emit("c0", trace.EvVoteRecv, "T1", "s0", "yes")
		tr.Emit("c0", trace.EvDecisionReached, "T1", "", "commit")
		_ = clk.Sleep(ctx, time.Millisecond)
		tr.Emit("s0", trace.EvDecisionRecv, "T1", "", "commit")
	})
	g.Wait()
	return tr
}

func TestTraceRecentByteStable(t *testing.T) {
	serve := func(tr *trace.Tracer, path string) *httptest.ResponseRecorder {
		s := NewServer(Config{Registry: metrics.NewRegistry(), Tracer: tr})
		return get(t, s, path)
	}
	a := serve(emitScript(t), "/trace/recent")
	b := serve(emitScript(t), "/trace/recent")
	if a.Code != 200 || b.Code != 200 {
		t.Fatalf("status = %d / %d", a.Code, b.Code)
	}
	if a.Body.String() != b.Body.String() {
		t.Fatalf("seeded virtual-time traces differ:\n%s\n---\n%s", a.Body.String(), b.Body.String())
	}
	if lines := strings.Count(a.Body.String(), "\n"); lines != 7 {
		t.Fatalf("got %d JSONL lines, want 7:\n%s", lines, a.Body.String())
	}
	// Every line parses back to an event.
	events, err := trace.ReadJSONL(strings.NewReader(a.Body.String()))
	if err != nil || len(events) != 7 {
		t.Fatalf("re-read: %v (%d events)", err, len(events))
	}
}

func TestTraceRecentDrain(t *testing.T) {
	tr := emitScript(t)
	s := NewServer(Config{Registry: metrics.NewRegistry(), Tracer: tr})
	first := get(t, s, "/trace/recent?drain=1")
	if strings.Count(first.Body.String(), "\n") != 7 {
		t.Fatalf("drain returned:\n%s", first.Body.String())
	}
	if second := get(t, s, "/trace/recent?drain=1"); second.Body.Len() != 0 {
		t.Fatalf("second drain not empty:\n%s", second.Body.String())
	}
}

func TestTraceRecentWithoutTracer(t *testing.T) {
	s := NewServer(Config{Registry: metrics.NewRegistry()})
	if rec := get(t, s, "/trace/recent"); rec.Code != 404 {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
}

// gatedLog wraps a wal.Log and blocks Records until released — it holds a
// Site inside Recover's WAL replay so the test can observe health there.
type gatedLog struct {
	wal.Log
	gate <-chan struct{}
}

func (g *gatedLog) Records() ([]wal.Record, error) {
	<-g.gate
	return g.Log.Records()
}

// TestHealthzDuringRecover drives the satellite requirement end to end:
// /healthz is 200 on a fresh site, 503 (recovering) while Site.Recover
// replays the WAL, and 200 again once the site reopens.
func TestHealthzDuringRecover(t *testing.T) {
	gate := make(chan struct{})
	st := site.NewSite(site.Config{Name: "s0", Log: &gatedLog{Log: wal.NewMemoryLog(), gate: gate}})
	s := NewServer(Config{Node: "s0", Registry: metrics.NewRegistry(), Health: st.Health, Ready: st.Ready})

	if rec := get(t, s, "/healthz"); rec.Code != 200 {
		t.Fatalf("fresh site: %d %s", rec.Code, rec.Body.String())
	}

	done := make(chan error, 1)
	go func() {
		_, err := st.Recover(context.Background())
		done <- err
	}()
	// Recover is parked on the gated WAL; wait for the flag to flip.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := get(t, s, "/healthz")
		if rec.Code == http.StatusServiceUnavailable {
			if !strings.Contains(rec.Body.String(), "recovering") {
				t.Fatalf("503 reason = %q, want recovering", rec.Body.String())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never went 503 during recovery")
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec := get(t, s, "/healthz"); rec.Code != 200 {
		t.Fatalf("after recovery: %d %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, s, "/readyz"); rec.Code != 200 {
		t.Fatalf("readyz after recovery: %d %s", rec.Code, rec.Body.String())
	}
}

func TestStartServeShutdown(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("up_total").Inc()
	s := NewServer(Config{Node: "n0", Registry: reg, Sample: true, SamplePeriod: 10 * time.Millisecond})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"up_total 1", "ops_goroutines", "ops_heap_alloc_bytes"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("live scrape missing %q:\n%s", want, sb.String())
		}
	}
	if s.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", s.Addr(), addr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatalf("server still serving after shutdown")
	}
	// Second shutdown is a no-op.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("double shutdown: %v", err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
