package ops

import (
	"runtime"
	"time"

	"o2pc/internal/metrics"
)

// sampler refreshes live runtime gauges in a registry. It is the one
// deliberately non-deterministic corner of the metrics surface: the
// gauges read the real runtime and real elapsed time, so it is only
// wired up when Config.Sample is set (the cluster binaries, never the
// virtual-time harness).
type sampler struct {
	goroutines *metrics.Gauge
	heapAlloc  *metrics.Gauge
	heapObj    *metrics.Gauge
	gcCycles   *metrics.Gauge
	uptime     *metrics.Gauge
}

func newSampler(reg *metrics.Registry) *sampler {
	reg.SetHelp("ops_goroutines", "live goroutine count (wall-clock sampler)")
	reg.SetHelp("ops_heap_alloc_bytes", "bytes of allocated heap objects (wall-clock sampler)")
	return &sampler{
		goroutines: reg.Gauge("ops_goroutines"),
		heapAlloc:  reg.Gauge("ops_heap_alloc_bytes"),
		heapObj:    reg.Gauge("ops_heap_objects"),
		gcCycles:   reg.Gauge("ops_gc_cycles"),
		uptime:     reg.Gauge("ops_uptime_seconds"),
	}
}

func (s *sampler) sample(uptime time.Duration) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.heapAlloc.Set(int64(ms.HeapAlloc))
	s.heapObj.Set(int64(ms.HeapObjects))
	s.gcCycles.Set(int64(ms.NumGC))
	s.uptime.Set(int64(uptime.Seconds()))
}

// enableProfiles switches on block and mutex profiling at modest rates so
// /debug/pprof/{block,mutex} carry data. The rates are process-global;
// disableProfiles restores them on Shutdown.
func (s *sampler) enableProfiles() {
	runtime.SetBlockProfileRate(100_000) // one sample per 100µs blocked
	runtime.SetMutexProfileFraction(5)
}

func (s *sampler) disableProfiles() {
	runtime.SetBlockProfileRate(0)
	runtime.SetMutexProfileFraction(0)
}
