package proto

// The hand-rolled binary wire codec for the TCP transport (DESIGN.md §15).
//
// encoding/gob pays per-message reflection and type-descriptor traffic on
// every envelope; the protocol vocabulary is eight small fixed structs, so
// a positional codec — one type tag byte, then each field in declaration
// order as a varint or length-prefixed run of bytes — beats it by an order
// of magnitude and allocates nothing beyond the payload itself.
//
// Encoding rules (the whole spec):
//
//   - uint8 enums (Protocol, MarkProtocol, OpKind, CompMode) and bools are
//     one byte;
//   - int64 and int fields are zigzag varints (binary.AppendVarint);
//   - strings and []byte are a uvarint byte length followed by the bytes;
//   - slices and maps are a uvarint element count followed by the elements
//     (map entries in sorted key order, so encoding is deterministic);
//   - zero-length slices, maps and []byte decode as nil — exactly what a
//     gob round trip produces, which keeps the two codecs equivalent
//     (FuzzWireCodec pins this).
//
// The codec is versioned as a unit: WireVersion is carried in the frame
// header by the transport (rpc/tcp.go), not per message, and any change to
// a message layout must bump it. Decoding never trusts a length prefix
// beyond the remaining input, so a torn or hostile payload fails with an
// error instead of an over-allocation or panic.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// WireVersion identifies this codec generation. The TCP transport sends it
// in every frame header and refuses mismatches loudly (rpc.ErrWireVersion),
// so an old peer and a new peer never half-understand each other.
const WireVersion = 1

// Wire type tags, one per message in the protocol vocabulary. Tag values
// are part of the wire format; append only.
const (
	wtExecRequest byte = iota + 1
	wtExecReply
	wtVoteRequest
	wtVoteReply
	wtDecision
	wtAck
	wtResolveRequest
	wtResolveReply
	wtBatch
	wtBatchReply
	wtRepBegin
	wtRepAccept
	wtRepReply
	wtRepNewTerm
	wtRepNewTermReply
)

// ErrUnknownWireType reports a message outside the protocol vocabulary
// (the transport falls back to gob for those) or an unknown tag byte on
// decode.
var ErrUnknownWireType = errors.New("proto: message type outside the wire vocabulary")

// errTruncated reports input that ends mid-field.
var errTruncated = errors.New("proto: truncated wire message")

// Batch carries several protocol messages from one sender to one peer in a
// single envelope — the per-peer message coalescing mirror of WAL group
// commit (rpc.Coalescer builds these, rpc.BatchHandler fans them back out
// server-side, in order, so per-peer FIFO delivery is preserved).
type Batch struct {
	Msgs []any
}

// BatchReply answers a Batch: Items[i] answers Msgs[i].
type BatchReply struct {
	Items []BatchItem
}

// BatchItem is one reply inside a BatchReply. Err carries a handler
// error's text ("" for success); Body is the reply message (nil when the
// handler returned none).
type BatchItem struct {
	Err  string
	Body any
}

// AppendMessage appends the binary encoding of msg (a tag byte followed by
// the fields) to buf and returns the extended slice. Messages outside the
// protocol vocabulary return ErrUnknownWireType.
func AppendMessage(buf []byte, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case ExecRequest:
		return appendExecRequest(buf, &m), nil
	case *ExecRequest:
		return appendExecRequest(buf, m), nil
	case ExecReply:
		return appendExecReply(buf, &m), nil
	case *ExecReply:
		return appendExecReply(buf, m), nil
	case VoteRequest:
		return appendString(append(buf, wtVoteRequest), m.TxnID), nil
	case *VoteRequest:
		return appendString(append(buf, wtVoteRequest), m.TxnID), nil
	case VoteReply:
		return appendVoteReply(buf, &m), nil
	case *VoteReply:
		return appendVoteReply(buf, m), nil
	case Decision:
		return appendDecision(buf, &m), nil
	case *Decision:
		return appendDecision(buf, m), nil
	case Ack:
		return appendBool(appendString(append(buf, wtAck), m.TxnID), m.Marked), nil
	case *Ack:
		return appendBool(appendString(append(buf, wtAck), m.TxnID), m.Marked), nil
	case ResolveRequest:
		return appendString(append(buf, wtResolveRequest), m.TxnID), nil
	case *ResolveRequest:
		return appendString(append(buf, wtResolveRequest), m.TxnID), nil
	case ResolveReply:
		return appendBool(appendBool(append(buf, wtResolveReply), m.Known), m.Commit), nil
	case *ResolveReply:
		return appendBool(appendBool(append(buf, wtResolveReply), m.Known), m.Commit), nil
	case Batch:
		return appendBatch(buf, &m)
	case *Batch:
		return appendBatch(buf, m)
	case BatchReply:
		return appendBatchReply(buf, &m)
	case *BatchReply:
		return appendBatchReply(buf, m)
	case RepBegin:
		return appendRepBegin(buf, &m), nil
	case *RepBegin:
		return appendRepBegin(buf, m), nil
	case RepAccept:
		return appendRepAccept(buf, &m), nil
	case *RepAccept:
		return appendRepAccept(buf, m), nil
	case RepReply:
		return binary.AppendUvarint(appendBool(append(buf, wtRepReply), m.OK), m.Term), nil
	case *RepReply:
		return binary.AppendUvarint(appendBool(append(buf, wtRepReply), m.OK), m.Term), nil
	case RepNewTerm:
		return binary.AppendUvarint(appendString(append(buf, wtRepNewTerm), m.Group), m.Term), nil
	case *RepNewTerm:
		return binary.AppendUvarint(appendString(append(buf, wtRepNewTerm), m.Group), m.Term), nil
	case RepNewTermReply:
		return appendRepNewTermReply(buf, &m), nil
	case *RepNewTermReply:
		return appendRepNewTermReply(buf, m), nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownWireType, msg)
	}
}

// DecodeMessage decodes one message produced by AppendMessage. The whole
// input must be consumed: trailing bytes are a framing error.
func DecodeMessage(data []byte) (any, error) {
	r := &wireReader{b: data}
	msg, err := decodeAny(r)
	if err != nil {
		return nil, err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("proto: %d trailing bytes after wire message", len(data)-r.off)
	}
	return msg, nil
}

func appendExecRequest(buf []byte, m *ExecRequest) []byte {
	buf = append(buf, wtExecRequest)
	buf = appendString(buf, m.TxnID)
	buf = binary.AppendUvarint(buf, uint64(len(m.Ops)))
	for i := range m.Ops {
		op := &m.Ops[i]
		buf = append(buf, byte(op.Kind))
		buf = appendString(buf, op.Key)
		buf = appendBytes(buf, op.Value)
		buf = binary.AppendVarint(buf, op.Delta)
		buf = binary.AppendVarint(buf, op.Min)
		buf = appendBool(buf, op.HasMin)
	}
	buf = append(buf, byte(m.Comp))
	buf = appendString(buf, m.Compensator)
	buf = append(buf, byte(m.Protocol), byte(m.Marking))
	buf = appendStrings(buf, m.TransMarks)
	buf = appendBool(buf, m.Visited)
	buf = binary.AppendVarint(buf, int64(m.Round))
	return buf
}

func decodeExecRequest(r *wireReader) ExecRequest {
	var m ExecRequest
	m.TxnID = r.str()
	if n := r.count(); n > 0 {
		m.Ops = make([]Operation, n)
		for i := range m.Ops {
			op := &m.Ops[i]
			op.Kind = OpKind(r.byte())
			op.Key = r.str()
			op.Value = r.bytes()
			op.Delta = r.varint()
			op.Min = r.varint()
			op.HasMin = r.bool()
		}
	}
	m.Comp = CompMode(r.byte())
	m.Compensator = r.str()
	m.Protocol = Protocol(r.byte())
	m.Marking = MarkProtocol(r.byte())
	m.TransMarks = r.strs()
	m.Visited = r.bool()
	m.Round = int(r.varint())
	return m
}

func appendExecReply(buf []byte, m *ExecReply) []byte {
	buf = append(buf, wtExecReply)
	buf = appendBool(buf, m.OK)
	buf = appendBool(buf, m.Rejected)
	buf = appendBool(buf, m.Fatal)
	buf = appendString(buf, m.Reason)
	buf = binary.AppendUvarint(buf, uint64(len(m.Reads)))
	if len(m.Reads) > 0 {
		keys := make([]string, 0, len(m.Reads))
		for k := range m.Reads {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			buf = appendString(buf, k)
			buf = appendBytes(buf, m.Reads[k])
		}
	}
	buf = appendStrings(buf, m.Marks)
	buf = appendWitnesses(buf, m.Witnesses)
	buf = appendString(buf, m.Err)
	return buf
}

func decodeExecReply(r *wireReader) ExecReply {
	var m ExecReply
	m.OK = r.bool()
	m.Rejected = r.bool()
	m.Fatal = r.bool()
	m.Reason = r.str()
	if n := r.count(); n > 0 {
		m.Reads = make(map[string][]byte, n)
		for i := 0; i < n && r.err == nil; i++ {
			k := r.str()
			m.Reads[k] = r.bytes()
		}
	}
	m.Marks = r.strs()
	m.Witnesses = decodeWitnesses(r)
	m.Err = r.str()
	return m
}

func appendVoteReply(buf []byte, m *VoteReply) []byte {
	buf = append(buf, wtVoteReply)
	buf = appendBool(buf, m.Commit)
	buf = appendBool(buf, m.ReadOnly)
	buf = appendString(buf, m.Reason)
	return appendWitnesses(buf, m.Witnesses)
}

func appendDecision(buf []byte, m *Decision) []byte {
	buf = append(buf, wtDecision)
	buf = appendString(buf, m.TxnID)
	buf = appendBool(buf, m.Commit)
	return appendStrings(buf, m.Unmarks)
}

func appendBatch(buf []byte, m *Batch) ([]byte, error) {
	buf = append(buf, wtBatch)
	buf = binary.AppendUvarint(buf, uint64(len(m.Msgs)))
	var err error
	for _, inner := range m.Msgs {
		if buf, err = AppendMessage(buf, inner); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendBatchReply(buf []byte, m *BatchReply) ([]byte, error) {
	buf = append(buf, wtBatchReply)
	buf = binary.AppendUvarint(buf, uint64(len(m.Items)))
	var err error
	for _, it := range m.Items {
		buf = appendString(buf, it.Err)
		if it.Body == nil {
			buf = append(buf, 0) // nil-body tag
			continue
		}
		if buf, err = AppendMessage(buf, it.Body); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendRepBegin(buf []byte, m *RepBegin) []byte {
	buf = append(buf, wtRepBegin)
	buf = appendString(buf, m.Group)
	buf = binary.AppendUvarint(buf, m.Term)
	buf = appendString(buf, m.TxnID)
	buf = appendStrings(buf, m.Sites)
	return append(buf, byte(m.Marking))
}

func decodeRepBegin(r *wireReader) RepBegin {
	var m RepBegin
	m.Group = r.str()
	m.Term = r.uvarint()
	m.TxnID = r.str()
	m.Sites = r.strs()
	m.Marking = MarkProtocol(r.byte())
	return m
}

func appendRepAccept(buf []byte, m *RepAccept) []byte {
	buf = append(buf, wtRepAccept)
	buf = appendString(buf, m.Group)
	buf = binary.AppendUvarint(buf, m.Term)
	buf = appendString(buf, m.TxnID)
	return appendBool(buf, m.Commit)
}

func appendRepNewTermReply(buf []byte, m *RepNewTermReply) []byte {
	buf = append(buf, wtRepNewTermReply)
	buf = appendBool(buf, m.OK)
	buf = binary.AppendUvarint(buf, m.Term)
	buf = binary.AppendUvarint(buf, uint64(len(m.Txns)))
	for i := range m.Txns {
		ts := &m.Txns[i]
		buf = appendString(buf, ts.TxnID)
		buf = appendStrings(buf, ts.Sites)
		buf = append(buf, byte(ts.Marking))
		buf = appendBool(buf, ts.Accepted)
		buf = binary.AppendUvarint(buf, ts.AccTerm)
		buf = appendBool(buf, ts.Commit)
	}
	return buf
}

func decodeRepNewTermReply(r *wireReader) RepNewTermReply {
	var m RepNewTermReply
	m.OK = r.bool()
	m.Term = r.uvarint()
	if n := r.count(); n > 0 {
		m.Txns = make([]RepTxnState, n)
		for i := range m.Txns {
			ts := &m.Txns[i]
			ts.TxnID = r.str()
			ts.Sites = r.strs()
			ts.Marking = MarkProtocol(r.byte())
			ts.Accepted = r.bool()
			ts.AccTerm = r.uvarint()
			ts.Commit = r.bool()
		}
	}
	return m
}

func appendWitnesses(buf []byte, ws []WitnessDelta) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ws)))
	for i := range ws {
		buf = appendString(buf, ws[i].Forward)
		buf = appendString(buf, ws[i].Site)
	}
	return buf
}

func decodeWitnesses(r *wireReader) []WitnessDelta {
	n := r.count()
	if n == 0 {
		return nil
	}
	ws := make([]WitnessDelta, n)
	for i := range ws {
		ws[i].Forward = r.str()
		ws[i].Site = r.str()
	}
	return ws
}

// decodeAny reads one tagged message from r.
func decodeAny(r *wireReader) (any, error) {
	tag := r.byte()
	if r.err != nil {
		return nil, r.err
	}
	var msg any
	switch tag {
	case wtExecRequest:
		msg = decodeExecRequest(r)
	case wtExecReply:
		msg = decodeExecReply(r)
	case wtVoteRequest:
		msg = VoteRequest{TxnID: r.str()}
	case wtVoteReply:
		var m VoteReply
		m.Commit = r.bool()
		m.ReadOnly = r.bool()
		m.Reason = r.str()
		m.Witnesses = decodeWitnesses(r)
		msg = m
	case wtDecision:
		var m Decision
		m.TxnID = r.str()
		m.Commit = r.bool()
		m.Unmarks = r.strs()
		msg = m
	case wtAck:
		msg = Ack{TxnID: r.str(), Marked: r.bool()}
	case wtResolveRequest:
		msg = ResolveRequest{TxnID: r.str()}
	case wtResolveReply:
		msg = ResolveReply{Known: r.bool(), Commit: r.bool()}
	case wtBatch:
		n := r.count()
		var m Batch
		if n > 0 {
			m.Msgs = make([]any, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				inner, err := decodeAny(r)
				if err != nil {
					return nil, err
				}
				m.Msgs = append(m.Msgs, inner)
			}
		}
		msg = m
	case wtBatchReply:
		n := r.count()
		var m BatchReply
		if n > 0 {
			m.Items = make([]BatchItem, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				var it BatchItem
				it.Err = r.str()
				if r.err == nil && r.off < len(r.b) && r.b[r.off] == 0 {
					r.off++ // nil-body tag
				} else {
					body, err := decodeAny(r)
					if err != nil {
						return nil, err
					}
					it.Body = body
				}
				m.Items = append(m.Items, it)
			}
		}
		msg = m
	case wtRepBegin:
		msg = decodeRepBegin(r)
	case wtRepAccept:
		var m RepAccept
		m.Group = r.str()
		m.Term = r.uvarint()
		m.TxnID = r.str()
		m.Commit = r.bool()
		msg = m
	case wtRepReply:
		msg = RepReply{OK: r.bool(), Term: r.uvarint()}
	case wtRepNewTerm:
		msg = RepNewTerm{Group: r.str(), Term: r.uvarint()}
	case wtRepNewTermReply:
		msg = decodeRepNewTermReply(r)
	default:
		return nil, fmt.Errorf("%w: tag %d", ErrUnknownWireType, tag)
	}
	if r.err != nil {
		return nil, r.err
	}
	return msg, nil
}

// ---- primitive encoders ----

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, p []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	return append(buf, p...)
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}

// wireReader is a sticky-error positional decoder: the first malformed
// field poisons it and every later read returns a zero value, so decoders
// stay straight-line and check r.err once.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
}

func (r *wireReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) bool() bool { return r.byte() != 0 }

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// count reads a length prefix, bounding it by the bytes actually left so a
// hostile prefix cannot drive a huge allocation.
func (r *wireReader) count() int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n > len(r.b)-r.off {
		r.fail()
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *wireReader) str() string {
	n := r.count()
	if n == 0 {
		return ""
	}
	return string(r.take(n))
}

// bytes reads a length-prefixed []byte; zero length decodes as nil (the
// gob-equivalence rule). The bytes are copied out of the input buffer so
// decoded messages never alias a reused read buffer.
func (r *wireReader) bytes() []byte {
	n := r.count()
	if n == 0 {
		return nil
	}
	p := r.take(n)
	if p == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

func (r *wireReader) strs() []string {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.str())
	}
	if r.err != nil {
		return nil
	}
	return out
}
