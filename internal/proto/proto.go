// Package proto defines the wire-level vocabulary of the system: the
// operation repertoire of subtransactions, the commit-protocol messages
// exchanged between coordinators and sites, and the protocol/marking mode
// enumerations.
//
// One design decision matters for experiment E6 (message census): a global
// transaction's per-site work is shipped as a single ExecRequest carrying
// the whole operation list (the restricted model's "well-defined repertoire
// of operations forming an interface at each site"), and all marking
// (P1/P2) state piggybacks on the existing messages. The resulting message
// pattern per participant is exactly:
//
//	ExecRequest/ExecReply, VoteRequest/VoteReply, Decision/Ack
//
// identical for 2PC, O2PC and O2PC+P1 — reproducing the paper's claim that
// the revised protocols need "no messages other than the standard 2PC
// messages".
package proto

import (
	"encoding/gob"
	"fmt"
)

// Protocol selects the commit protocol for a global transaction.
type Protocol uint8

const (
	// TwoPC is standard two-phase commit over distributed strict 2PL:
	// exclusive locks are held from acquisition until the DECISION message.
	TwoPC Protocol = iota + 1
	// O2PC is the paper's optimistic 2PC: a site that votes YES locally
	// commits and releases all locks immediately; an eventual abort
	// decision triggers compensation.
	O2PC
	// Paxos is Paxos Commit (Gray & Lamport): participants behave exactly
	// as under 2PC — locks held until the DECISION — but the coordinator's
	// decision record is replicated to a majority of decision-log replicas
	// before the DECISION is announced, so no single coordinator crash
	// blocks a YES-voting participant once a majority of replicas is up.
	Paxos
)

// String returns the protocol mnemonic.
func (p Protocol) String() string {
	switch p {
	case TwoPC:
		return "2PC"
	case O2PC:
		return "O2PC"
	case Paxos:
		return "Paxos"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// MarkProtocol selects the correctness protocol layered over O2PC.
type MarkProtocol uint8

const (
	// MarkNone runs O2PC bare (correct only under the saga/multi-
	// transaction models, per Section 4's closing remark).
	MarkNone MarkProtocol = iota
	// MarkP1 enforces stratification property S1 via undone-site marking
	// (Section 6.2).
	MarkP1
	// MarkP2 enforces the dual property S2 via locally-committed-site
	// marking.
	MarkP2
	// MarkSimple is the "very simple protocol" of Section 6.2's closing
	// discussion: every site a transaction executes at must be undone
	// with respect to the same transactions and locally-committed with
	// respect to none. Stricter (less concurrency) but trivially
	// stratified — the simplicity/concurrency trade-off the paper names.
	MarkSimple
)

// String returns the marking-protocol mnemonic.
func (m MarkProtocol) String() string {
	switch m {
	case MarkNone:
		return "none"
	case MarkP1:
		return "P1"
	case MarkP2:
		return "P2"
	case MarkSimple:
		return "simple"
	default:
		return fmt.Sprintf("MarkProtocol(%d)", uint8(m))
	}
}

// OpKind enumerates subtransaction operations.
type OpKind uint8

const (
	// OpRead reads a key; its value is returned in ExecReply.Reads.
	OpRead OpKind = iota + 1
	// OpWrite installs a value.
	OpWrite
	// OpDelete installs a tombstone.
	OpDelete
	// OpAdd performs a read-modify-write on an int64-encoded key, adding
	// Delta. If HasMin is set and the result would fall below Min, the
	// operation fails and the site votes NO — the standard "insufficient
	// funds / no seats left" unilateral-abort trigger.
	OpAdd
)

// String returns the op mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	case OpAdd:
		return "add"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Operation is one step of a subtransaction.
type Operation struct {
	Kind   OpKind
	Key    string
	Value  []byte
	Delta  int64
	Min    int64
	HasMin bool
}

// Read returns a read operation.
func Read(key string) Operation { return Operation{Kind: OpRead, Key: key} }

// Write returns a write operation.
func Write(key string, value []byte) Operation {
	return Operation{Kind: OpWrite, Key: key, Value: value}
}

// Delete returns a delete operation.
func Delete(key string) Operation { return Operation{Kind: OpDelete, Key: key} }

// Add returns an unconditional int64 increment operation.
func Add(key string, delta int64) Operation { return Operation{Kind: OpAdd, Key: key, Delta: delta} }

// AddMin returns an int64 increment that fails (vote NO) when the result
// would drop below min.
func AddMin(key string, delta, min int64) Operation {
	return Operation{Kind: OpAdd, Key: key, Delta: delta, Min: min, HasMin: true}
}

// CompMode selects how a subtransaction is compensated when the global
// transaction aborts after the site locally committed.
type CompMode uint8

const (
	// CompSemantic derives inverse operations from the forward operation
	// list (the restricted model: "a DELETE as compensation for an
	// INSERT"); OpAdd inverts to an unconditional OpAdd of -Delta, which
	// does not disturb interleaved updates by other transactions.
	CompSemantic CompMode = iota + 1
	// CompBeforeImage restores the forward subtransaction's before-images
	// (the generic model's value-based undo, run as a new transaction).
	CompBeforeImage
	// CompCustom invokes a compensator registered by name at the site.
	CompCustom
	// CompNone marks the subtransaction non-compensatable (a "real
	// action"): the site must run it under retained locks until the
	// DECISION message even when the protocol is O2PC (Section 2's
	// adjustment; experiment E9).
	CompNone
)

// String returns the compensation-mode mnemonic.
func (c CompMode) String() string {
	switch c {
	case CompSemantic:
		return "semantic"
	case CompBeforeImage:
		return "before-image"
	case CompCustom:
		return "custom"
	case CompNone:
		return "none"
	default:
		return fmt.Sprintf("CompMode(%d)", uint8(c))
	}
}

// ExecRequest ships a whole subtransaction to a site.
type ExecRequest struct {
	TxnID       string
	Ops         []Operation
	Comp        CompMode
	Compensator string // registry name for CompCustom
	Protocol    Protocol
	Marking     MarkProtocol
	// TransMarks carries the global transaction's accumulated marks
	// (transmarks.j) and Visited whether any earlier subtransaction was
	// admitted; both piggyback the R1 compatibility check.
	TransMarks []string
	Visited    bool
	// Round is the session round index for multi-shot transactions: 0 for
	// the classic one-shot shape, >= 1 when the request continues a
	// transaction already open at the site (the site re-runs the R1
	// admission check against its current marking state and appends the
	// round's operations to the open subtransaction).
	Round int
}

// ExecReply reports subtransaction execution.
type ExecReply struct {
	OK bool
	// Rejected is set when the marking protocol's compatibility check
	// failed; Fatal then distinguishes incompatibilities that only
	// aborting the global transaction can resolve from retryable ones.
	Rejected bool
	Fatal    bool
	Reason   string
	// Reads returns OpRead results keyed by Key; absent keys are omitted.
	Reads map[string][]byte
	// Marks returns the merged transmarks after the R1 union step.
	Marks []string
	// Witnesses piggybacks pending UDUM1 witness facts (also carried on
	// VOTE replies) so unmarking is not delayed when a witnessing
	// transaction never reaches its vote round.
	Witnesses []WitnessDelta
	Err       string
}

// VoteRequest is the coordinator's VOTE-REQ (PREPARE) message.
type VoteRequest struct {
	TxnID string
}

// WitnessDelta reports that a global transaction executed at Site while the
// site was undone with respect to Forward — the local half of the UDUM1
// condition, piggybacked on VOTE replies.
type WitnessDelta struct {
	Forward string
	Site    string
}

// VoteReply is the participant's VOTE message. ReadOnly implements the
// classic read-only participant optimization (as in R*, which the paper
// builds on): a participant whose subtransaction wrote nothing releases
// everything at its vote and drops out of the protocol — the coordinator
// sends it no DECISION. Enabled per site via site.Config.ReadOnlyVotes.
type VoteReply struct {
	Commit    bool
	ReadOnly  bool
	Reason    string
	Witnesses []WitnessDelta
}

// Decision is the coordinator's DECISION message. Unmarks carries
// undone-to-unmarked notices (R3) for transactions whose UDUM1 condition
// the coordinator-side witness board has established, piggybacked so that
// no extra messages are needed.
type Decision struct {
	TxnID   string
	Commit  bool
	Unmarks []string
}

// Ack acknowledges a Decision. Marked piggybacks whether the acking site
// currently holds an undone mark for the transaction, which is how the
// coordinator-side board learns the marked-site set for UDUM1 tracking.
type Ack struct {
	TxnID  string
	Marked bool
}

// ResolveRequest is a prepared participant's inquiry for a lost decision
// (sent while blocked after a coordinator failure).
type ResolveRequest struct {
	TxnID string
}

// ResolveReply answers a ResolveRequest.
type ResolveReply struct {
	Known  bool
	Commit bool
}

// RepBegin replicates a coordinator's BEGIN record to one decision-log
// replica ahead of the first subtransaction: without a majority-durable
// BEGIN, a takeover leader could not presume abort for the transaction.
type RepBegin struct {
	Group   string // leader group the record belongs to (coordinator name)
	Term    uint64 // leader term proposing the record
	TxnID   string
	Sites   []string
	Marking MarkProtocol
}

// RepAccept is the Paxos phase-2a message: the leader proposes the
// decision value for one transaction at its term. A majority of OK
// replies makes the decision chosen — only then may the DECISION message
// be sent to participants.
type RepAccept struct {
	Group  string
	Term   uint64
	TxnID  string
	Commit bool
}

// RepReply acknowledges RepBegin or RepAccept. OK reports acceptance;
// Term returns the replica's current term for the group (on a nack, the
// term that deposed the sender).
type RepReply struct {
	OK   bool
	Term uint64
}

// RepNewTerm is the Paxos phase-1a message: a would-be leader claims a
// term for the whole group (one promise covers every transaction instance,
// which is strictly more conservative than per-instance ballots).
type RepNewTerm struct {
	Group string
	Term  uint64
}

// RepTxnState is one transaction's acceptor state, returned in the
// phase-1b grant so a takeover leader can finish in-flight transactions.
type RepTxnState struct {
	TxnID    string
	Sites    []string
	Marking  MarkProtocol
	Accepted bool   // an accepted decision value exists
	AccTerm  uint64 // term at which the value was accepted
	Commit   bool   // the accepted value
}

// RepNewTermReply grants or refuses a term claim; on grant, Txns carries
// the replica's full acceptor state for the group.
type RepNewTermReply struct {
	OK   bool
	Term uint64
	Txns []RepTxnState
}

// TxnIDOf extracts the global transaction id a message belongs to, or ""
// for replies (which carry none) and unknown types. The transport's
// tracer uses it to attribute message events to transactions without
// knowing the message vocabulary.
func TxnIDOf(msg any) string {
	switch m := msg.(type) {
	case ExecRequest:
		return m.TxnID
	case *ExecRequest:
		return m.TxnID
	case VoteRequest:
		return m.TxnID
	case *VoteRequest:
		return m.TxnID
	case Decision:
		return m.TxnID
	case *Decision:
		return m.TxnID
	case Ack:
		return m.TxnID
	case *Ack:
		return m.TxnID
	case ResolveRequest:
		return m.TxnID
	case *ResolveRequest:
		return m.TxnID
	case RepBegin:
		return m.TxnID
	case *RepBegin:
		return m.TxnID
	case RepAccept:
		return m.TxnID
	case *RepAccept:
		return m.TxnID
	default:
		return ""
	}
}

// RegisterGob registers every message type with encoding/gob for the TCP
// transport. Safe to call multiple times.
func RegisterGob() {
	gob.Register(ExecRequest{})
	gob.Register(ExecReply{})
	gob.Register(VoteRequest{})
	gob.Register(VoteReply{})
	gob.Register(Decision{})
	gob.Register(Ack{})
	gob.Register(ResolveRequest{})
	gob.Register(ResolveReply{})
	gob.Register(Batch{})
	gob.Register(BatchReply{})
	gob.Register(RepBegin{})
	gob.Register(RepAccept{})
	gob.Register(RepReply{})
	gob.Register(RepNewTerm{})
	gob.Register(RepNewTermReply{})
}
