package proto

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// gobRoundTrip pushes msg through the gob path the TCP transport used
// before the binary codec: an interface-typed encode/decode, exactly like
// the old envelope{Body any}. Its output is the equivalence reference for
// the binary codec — in particular gob's zero-value elision means empty
// slices and maps come back nil.
func gobRoundTrip(t testing.TB, msg any) any {
	t.Helper()
	RegisterGob()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
		t.Fatalf("gob encode %T: %v", msg, err)
	}
	var out any
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode %T: %v", msg, err)
	}
	return out
}

func wireRoundTrip(t testing.TB, msg any) any {
	t.Helper()
	b, err := AppendMessage(nil, msg)
	if err != nil {
		t.Fatalf("AppendMessage %T: %v", msg, err)
	}
	out, err := DecodeMessage(b)
	if err != nil {
		t.Fatalf("DecodeMessage %T: %v", msg, err)
	}
	return out
}

// sampleMessages builds one instance of every wire message from the fuzzed
// primitives, exercising nil/empty/occupied shapes of each container.
func sampleMessages(id, key, s string, val []byte, d1, d2 int64, b1, b2, b3 bool, n uint8) []any {
	ops := []Operation{
		{Kind: OpKind(n%5 + 1), Key: key, Value: val, Delta: d1, Min: d2, HasMin: b1},
		Read(key + "r"),
		AddMin(key, d2, d1),
	}
	marks := []string{id, s}
	if b2 {
		marks = nil
	}
	var reads map[string][]byte
	if b3 {
		reads = map[string][]byte{key: val, s: nil, "": {}}
	}
	ws := []WitnessDelta{{Forward: id, Site: s}, {}}
	if b1 && b2 {
		ws = nil
	}
	txns := []RepTxnState{
		{TxnID: id, Sites: marks, Marking: MarkProtocol(n % 4), Accepted: b1,
			AccTerm: uint64(d1), Commit: b2},
		{},
	}
	if b3 {
		txns = nil
	}
	return []any{
		ExecRequest{TxnID: id, Ops: ops, Comp: CompMode(n%4 + 1), Compensator: s,
			Protocol: Protocol(n%2 + 1), Marking: MarkProtocol(n % 4), TransMarks: marks,
			Visited: b1, Round: int(n)},
		ExecRequest{},
		ExecReply{OK: b1, Rejected: b2, Fatal: b3, Reason: s, Reads: reads,
			Marks: marks, Witnesses: ws, Err: id},
		VoteRequest{TxnID: id},
		VoteReply{Commit: b1, ReadOnly: b2, Reason: s, Witnesses: ws},
		Decision{TxnID: id, Commit: b1, Unmarks: marks},
		Ack{TxnID: id, Marked: b2},
		ResolveRequest{TxnID: id},
		ResolveReply{Known: b1, Commit: b2},
		Batch{Msgs: []any{VoteRequest{TxnID: id}, Decision{TxnID: s, Commit: b1, Unmarks: marks}}},
		Batch{},
		BatchReply{Items: []BatchItem{
			{Err: s, Body: VoteReply{Commit: b1, Reason: id, Witnesses: ws}},
			{Err: "", Body: nil},
			{Body: Ack{TxnID: id, Marked: b3}},
		}},
		RepBegin{Group: s, Term: uint64(d1), TxnID: id, Sites: marks,
			Marking: MarkProtocol(n % 4)},
		RepBegin{},
		RepAccept{Group: s, Term: uint64(d2), TxnID: id, Commit: b1},
		RepReply{OK: b2, Term: uint64(d1)},
		RepNewTerm{Group: s, Term: uint64(d2)},
		RepNewTermReply{OK: b1, Term: uint64(d1), Txns: txns},
		RepNewTermReply{},
		Batch{Msgs: []any{RepAccept{Group: s, Term: uint64(d1), TxnID: id, Commit: b2},
			RepNewTerm{Group: id, Term: uint64(d2)}}},
	}
}

// FuzzWireCodec pins the binary codec against the gob path: for every
// protocol message shape, decode(encode(m)) must equal what a gob round
// trip of m produces (same values, same nil-vs-empty normalization).
func FuzzWireCodec(f *testing.F) {
	f.Add("T1", "acct", "s0", []byte{1, 2, 3}, int64(-40), int64(0), true, false, true, uint8(3))
	f.Add("", "", "", []byte(nil), int64(0), int64(0), false, false, false, uint8(0))
	f.Add("T\x00x", "k\xff", "росо", []byte{0}, int64(1<<62), int64(-1<<62), true, true, true, uint8(255))
	f.Fuzz(func(t *testing.T, id, key, s string, val []byte, d1, d2 int64, b1, b2, b3 bool, n uint8) {
		for _, msg := range sampleMessages(id, key, s, val, d1, d2, b1, b2, b3, n) {
			got := wireRoundTrip(t, msg)
			want := gobRoundTrip(t, msg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%T diverged:\nbinary: %#v\ngob:    %#v", msg, got, want)
			}
		}
	})
}

// FuzzWireDecode feeds raw bytes to the decoder: anything may be rejected,
// nothing may panic or over-allocate, and everything accepted must
// re-encode and re-decode to the same value (decode/encode/decode fixpoint).
func FuzzWireDecode(f *testing.F) {
	seed, _ := AppendMessage(nil, ExecRequest{TxnID: "T1", Ops: []Operation{Read("k")}})
	f.Add(seed)
	f.Add([]byte{wtBatch, 2, wtVoteRequest, 1, 'x', wtAck, 1, 'y', 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		b, err := AppendMessage(nil, msg)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", msg, err)
		}
		again, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", msg, err)
		}
		if !reflect.DeepEqual(msg, again) {
			t.Fatalf("decode/encode/decode fixpoint broken:\nfirst:  %#v\nsecond: %#v", msg, again)
		}
	})
}

// TestWireCodecDeterministic pins byte-level determinism: maps are encoded
// in sorted key order, so the same message always yields the same bytes
// (the exposure records in site WALs rely on this for byte-identical
// same-seed runs).
func TestWireCodecDeterministic(t *testing.T) {
	m := ExecReply{OK: true, Reads: map[string][]byte{"b": {2}, "a": {1}, "c": nil, "d": {4}}}
	first, err := AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		// Rebuild the map each time so iteration-order variance would show.
		again, err := AppendMessage(nil, ExecReply{OK: true,
			Reads: map[string][]byte{"d": {4}, "c": nil, "b": {2}, "a": {1}}})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encoding not deterministic:\n% x\n% x", first, again)
		}
	}
}

// TestWireCodecRejectsUnknown pins the loud-failure contract for messages
// outside the vocabulary and for unknown tag bytes.
func TestWireCodecRejectsUnknown(t *testing.T) {
	if _, err := AppendMessage(nil, struct{ X int }{1}); err == nil {
		t.Fatal("encoding a non-protocol type succeeded")
	}
	if _, err := DecodeMessage([]byte{0xEE, 1, 2, 3}); err == nil {
		t.Fatal("decoding an unknown tag succeeded")
	}
	// Trailing garbage after a valid message is a framing error.
	b, _ := AppendMessage(nil, Ack{TxnID: "T", Marked: true})
	if _, err := DecodeMessage(append(b, 0x7)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
