package proto

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestOperationConstructors(t *testing.T) {
	if op := Read("k"); op.Kind != OpRead || op.Key != "k" {
		t.Fatalf("Read: %+v", op)
	}
	if op := Write("k", []byte("v")); op.Kind != OpWrite || string(op.Value) != "v" {
		t.Fatalf("Write: %+v", op)
	}
	if op := Delete("k"); op.Kind != OpDelete {
		t.Fatalf("Delete: %+v", op)
	}
	if op := Add("k", -3); op.Kind != OpAdd || op.Delta != -3 || op.HasMin {
		t.Fatalf("Add: %+v", op)
	}
	if op := AddMin("k", -3, 0); !op.HasMin || op.Min != 0 {
		t.Fatalf("AddMin: %+v", op)
	}
}

func TestStringMethods(t *testing.T) {
	cases := map[string]string{
		TwoPC.String():           "2PC",
		O2PC.String():            "O2PC",
		MarkNone.String():        "none",
		MarkP1.String():          "P1",
		MarkP2.String():          "P2",
		OpRead.String():          "read",
		OpWrite.String():         "write",
		OpDelete.String():        "delete",
		OpAdd.String():           "add",
		CompSemantic.String():    "semantic",
		CompBeforeImage.String(): "before-image",
		CompCustom.String():      "custom",
		CompNone.String():        "none",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q want %q", got, want)
		}
	}
	// Unknown values still render something.
	if Protocol(99).String() == "" || MarkProtocol(99).String() == "" ||
		OpKind(99).String() == "" || CompMode(99).String() == "" {
		t.Errorf("unknown enum values must render")
	}
}

func TestGobRoundTripAllMessages(t *testing.T) {
	RegisterGob()
	RegisterGob() // idempotent

	msgs := []any{
		ExecRequest{TxnID: "T1", Ops: []Operation{AddMin("k", -1, 0)},
			Comp: CompSemantic, Protocol: O2PC, Marking: MarkP1,
			TransMarks: []string{"T0"}, Visited: true},
		ExecReply{OK: true, Reads: map[string][]byte{"k": []byte("v")},
			Marks: []string{"T0"}, Witnesses: []WitnessDelta{{Forward: "T0", Site: "s0"}}},
		VoteRequest{TxnID: "T1"},
		VoteReply{Commit: true, Witnesses: []WitnessDelta{{Forward: "T9", Site: "s1"}}},
		Decision{TxnID: "T1", Commit: false, Unmarks: []string{"T0"}},
		Ack{TxnID: "T1", Marked: true},
		ResolveRequest{TxnID: "T1"},
		ResolveReply{Known: true, Commit: true},
	}
	for _, msg := range msgs {
		var buf bytes.Buffer
		var in any = msg
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		var out any
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if out == nil {
			t.Fatalf("decode %T: nil", msg)
		}
	}
}
