// Command banking models the paper's multidatabase motivation: several
// autonomous banks, each running its own DBMS, processing inter-bank
// transfers as global transactions under O2PC+P1 while each bank's own
// tellers keep running purely local transactions that no global protocol
// may restrict.
//
// The demo drives a concurrent mix of transfers (some of which fail for
// insufficient funds or are unilaterally refused by a bank), interleaved
// with local teller activity, and then proves two properties:
//
//   - conservation: no money is created or destroyed, even though aborted
//     transfers were compensated after exposing their updates;
//   - correctness: the recorded history satisfies the Section 5 criterion.
//
// Run with:
//
//	go run ./examples/banking
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"o2pc"
)

const (
	nBanks    = 4
	nAccounts = 6 // accounts per bank
	initial   = 500
	transfers = 120
	tellers   = 40 // local transactions per bank
)

func accountKey(i int) o2pc.Key { return o2pc.Key(fmt.Sprintf("acct-%d", i)) }
func bank(i int) string         { return fmt.Sprintf("s%d", i) }

func main() {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: nBanks, Record: true})
	for b := 0; b < nBanks; b++ {
		for a := 0; a < nAccounts; a++ {
			cl.SeedSiteInt64(b, string(accountKey(a)), initial)
		}
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))

	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, insufficient, refused := 0, 0, 0

	// Inter-bank transfers: debit an account at one bank, credit an
	// account at another. A transfer may fail because the source account
	// lacks funds (AddMin constraint) or because the receiving bank
	// unilaterally refuses it at vote time (autonomy).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < transfers; i++ {
			from, to := rng.Intn(nBanks), rng.Intn(nBanks)
			for to == from {
				to = rng.Intn(nBanks)
			}
			acct := accountKey(rng.Intn(nAccounts))
			amount := int64(1 + rng.Intn(200))
			id := fmt.Sprintf("xfer%d", i)
			if rng.Float64() < 0.10 {
				cl.DoomAtSite(id, bank(to)) // receiving bank refuses
			}
			res := cl.Run(ctx, o2pc.TxnSpec{
				ID:       id,
				Protocol: o2pc.O2PC,
				Marking:  o2pc.MarkP1,
				Subtxns: []o2pc.SubtxnSpec{
					{Site: bank(from), Ops: []o2pc.Operation{o2pc.AddMin(string(acct), -amount, 0)}, Comp: o2pc.CompSemantic},
					{Site: bank(to), Ops: []o2pc.Operation{o2pc.Add(string(acct), amount)}, Comp: o2pc.CompSemantic},
				},
			})
			mu.Lock()
			switch res.Outcome {
			case o2pc.Committed:
				committed++
			case o2pc.AbortedExec:
				insufficient++
			default:
				refused++
			}
			mu.Unlock()
		}
	}()

	// Local tellers: per-bank interest postings, entirely outside the
	// global protocols.
	for b := 0; b < nBanks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			localRng := rand.New(rand.NewSource(int64(b)))
			for i := 0; i < tellers; i++ {
				acct := accountKey(localRng.Intn(nAccounts))
				err := cl.RunLocal(ctx, b, func(t *o2pc.Txn) error {
					v, err := t.ReadInt64ForUpdate(ctx, acct)
					if err != nil {
						return err
					}
					// Post then reverse a 1-unit fee: net zero, but it
					// creates real read-write conflicts.
					if err := t.WriteInt64(ctx, acct, v+1); err != nil {
						return err
					}
					return t.WriteInt64(ctx, acct, v)
				})
				if err != nil {
					log.Printf("teller %d/%d: %v", b, i, err)
				}
			}
		}(b)
	}
	wg.Wait()

	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := cl.Quiesce(qctx); err != nil {
		log.Fatalf("quiesce: %v", err)
	}

	var total int64
	for b := 0; b < nBanks; b++ {
		for a := 0; a < nAccounts; a++ {
			total += cl.Site(b).ReadInt64(accountKey(a))
		}
	}
	want := int64(nBanks * nAccounts * initial)
	fmt.Printf("transfers: %d committed, %d insufficient-funds, %d refused/aborted\n",
		committed, insufficient, refused)
	fmt.Printf("total money: %d (expected %d) — conserved: %v\n", total, want, total == want)
	if total != want {
		log.Fatal("CONSERVATION VIOLATED")
	}

	audit := cl.Audit()
	fmt.Printf("history audit: regular cycles=%d, benign CT cycles=%d, correct=%v\n",
		audit.RegularCount, audit.BenignCount, audit.Correct())
	if !audit.Correct() {
		log.Fatal("CORRECTNESS CRITERION VIOLATED")
	}
	if v := cl.CompensationViolations(); len(v) != 0 {
		log.Fatalf("atomicity of compensation violated: %+v", v)
	}
	fmt.Println("atomicity of compensation: preserved")
}
