// Command quickstart demonstrates the O2PC protocol on a three-site
// cluster: a committed global transaction, an aborted one whose exposed
// updates are semantically compensated, and the Section 5 verifier
// confirming the recorded history is correct.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"o2pc"
)

func main() {
	// A cluster of three autonomous site DBMSs with history recording on.
	cl := o2pc.NewCluster(o2pc.ClusterConfig{
		Sites:  3,
		Record: true,
		Network: o2pc.NetworkConfig{
			MinLatency: 200 * time.Microsecond,
			MaxLatency: 500 * time.Microsecond,
		},
	})
	cl.SeedInt64("balance", 100) // every site starts with balance=100
	ctx := context.Background()

	// --- 1. A committed transfer: s0 pays 40, s1 receives 40. Both
	// sites vote YES, locally commit, and release locks immediately.
	res := cl.Run(ctx, o2pc.TxnSpec{
		Protocol: o2pc.O2PC,
		Marking:  o2pc.MarkP1,
		Subtxns: []o2pc.SubtxnSpec{
			{Site: "s0", Ops: []o2pc.Operation{o2pc.AddMin("balance", -40, 0)}, Comp: o2pc.CompSemantic},
			{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("balance", 40)}, Comp: o2pc.CompSemantic},
		},
	})
	fmt.Printf("transfer %s: %v (latency %v)\n", res.ID, res.Outcome, res.Latency.Round(time.Microsecond))
	fmt.Printf("  s0 balance = %d, s1 balance = %d\n",
		cl.Site(0).ReadInt64("balance"), cl.Site(1).ReadInt64("balance"))

	// --- 2. An aborted transfer: s2 unilaterally votes NO (site
	// autonomy). s0 has already locally committed and exposed its debit;
	// the abort decision triggers a compensating transaction there.
	cl.DoomAtSite("Tdoomed", "s2")
	res = cl.Run(ctx, o2pc.TxnSpec{
		ID:       "Tdoomed",
		Protocol: o2pc.O2PC,
		Marking:  o2pc.MarkP1,
		Subtxns: []o2pc.SubtxnSpec{
			{Site: "s0", Ops: []o2pc.Operation{o2pc.AddMin("balance", -25, 0)}, Comp: o2pc.CompSemantic},
			{Site: "s2", Ops: []o2pc.Operation{o2pc.Add("balance", 25)}, Comp: o2pc.CompSemantic},
		},
	})
	fmt.Printf("transfer %s: %v\n", res.ID, res.Outcome)

	// Wait for compensation to finish, then inspect.
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := cl.Quiesce(qctx); err != nil {
		log.Fatalf("quiesce: %v", err)
	}
	fmt.Printf("  s0 balance = %d (restored by CT%s), s2 balance = %d (rolled back)\n",
		cl.Site(0).ReadInt64("balance"), res.ID, cl.Site(2).ReadInt64("balance"))
	fmt.Printf("  s0 marked undone wrt %s: %v\n", res.ID, cl.Site(0).Marks().Contains(res.ID))

	// --- 3. The Section 5 verifier: the recorded history must satisfy
	// the paper's correctness criterion (no local cycles, no regular
	// cycles) and atomicity of compensation (Theorem 2).
	audit := cl.Audit()
	fmt.Printf("audit: local cycles=%d, regular cycles=%d, benign CT cycles=%d, correct=%v\n",
		len(audit.LocalCycles), audit.RegularCount, audit.BenignCount, audit.Correct())
	if v := cl.CompensationViolations(); len(v) != 0 {
		log.Fatalf("atomicity of compensation violated: %+v", v)
	}
	fmt.Println("atomicity of compensation: preserved")
}
