package main

import (
	"context"
	"fmt"
	"o2pc"
	"time"
)

func main() {
	reg := o2pc.NewRegistry()
	reg.Register("release", func(ctx context.Context, t *o2pc.Txn, f o2pc.Forward) error {
		for _, op := range f.Ops {
			if op.Kind != o2pc.OpAdd {
				continue
			}
			cur, err := t.ReadInt64(ctx, o2pc.Key(op.Key))
			if err != nil {
				return err
			}
			if err := t.WriteInt64(ctx, o2pc.Key(op.Key), cur-op.Delta); err != nil {
				return err
			}
		}
		return nil
	})
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 3, Compensators: reg})
	cl.SeedSiteInt64(0, "seats", 30)
	cl.SeedSiteInt64(1, "rooms", 25)
	cl.SeedSiteInt64(2, "cars", 20)
	ctx := context.Background()
	sem := make(chan struct{}, 8)
	done := make(chan struct{}, 60)
	for i := 0; i < 60; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; done <- struct{}{} }()
			id := fmt.Sprintf("trip%d", i)
			if i%10 == 9 {
				cl.DoomAtSite(id, "s2")
			}
			res := cl.Run(ctx, o2pc.TxnSpec{
				ID: id, Protocol: o2pc.O2PC, Marking: o2pc.MarkP1,
				Subtxns: []o2pc.SubtxnSpec{
					{Site: "s0", Ops: []o2pc.Operation{o2pc.AddMin("seats", -1, 0)}, Comp: o2pc.CompCustom, Compensator: "release"},
					{Site: "s1", Ops: []o2pc.Operation{o2pc.AddMin("rooms", -1, 0)}, Comp: o2pc.CompCustom, Compensator: "release"},
					{Site: "s2", Ops: []o2pc.Operation{o2pc.AddMin("cars", -1, 0)}, Comp: o2pc.CompCustom, Compensator: "release"},
				},
			})
			if !res.Committed() {
				fmt.Printf("%s: %v err=%v\n", id, res.Outcome, res.Err)
			}
		}(i)
	}
	for i := 0; i < 60; i++ {
		<-done
	}
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	_ = cl.Quiesce(qctx)
	fmt.Println("left:", cl.Site(0).ReadInt64("seats"), cl.Site(1).ReadInt64("rooms"), cl.Site(2).ReadInt64("cars"))
}
