// Command travel models the restricted decomposition model (Section 3.1)
// on the paper's federated-reservation scenario: booking a trip requires a
// flight seat, a hotel room and a rental car, each managed by a different
// — possibly competing — reservation agency. Every agency exposes a small
// repertoire of operations (reserve/release), and compensation for a
// reserve is the registered counter-task release ("a DELETE as
// compensation for an INSERT").
//
// The demo books trips concurrently until inventories run out. Sold-out
// resources make agencies vote NO; partially exposed reservations are
// released by compensators, so no seat, room or car is ever leaked or
// double-booked.
//
// Run with:
//
//	go run ./examples/travel
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"o2pc"
)

const (
	flightSeats = 30
	hotelRooms  = 25
	rentalCars  = 20
	trips       = 60
)

func main() {
	// The "release" compensator is the inverse of "reserve" from the
	// agencies' shared operation repertoire.
	reg := o2pc.NewRegistry()
	reg.Register("release", func(ctx context.Context, t *o2pc.Txn, f o2pc.Forward) error {
		for _, op := range f.Ops {
			if op.Kind != o2pc.OpAdd {
				continue
			}
			cur, err := t.ReadInt64ForUpdate(ctx, o2pc.Key(op.Key))
			if err != nil {
				return err
			}
			if err := t.WriteInt64(ctx, o2pc.Key(op.Key), cur-op.Delta); err != nil {
				return err
			}
		}
		return nil
	})

	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 3, Record: true, Compensators: reg})
	const (
		airline = "s0"
		hotel   = "s1"
		rentals = "s2"
	)
	cl.SeedSiteInt64(0, "seats", flightSeats)
	cl.SeedSiteInt64(1, "rooms", hotelRooms)
	cl.SeedSiteInt64(2, "cars", rentalCars)
	ctx := context.Background()

	reserve := func(site, key string) o2pc.SubtxnSpec {
		return o2pc.SubtxnSpec{
			Site: site,
			// Reserve one unit; vote NO when sold out.
			Ops:         []o2pc.Operation{o2pc.AddMin(key, -1, 0)},
			Comp:        o2pc.CompCustom,
			Compensator: "release",
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	booked, soldOut, refused := 0, 0, 0
	sem := make(chan struct{}, 4)
	for i := 0; i < trips; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			id := fmt.Sprintf("trip%d", i)
			// Every 10th trip is refused by the rental agency at vote
			// time (payment verification failed, say): the airline and
			// hotel have already locally committed their reservations,
			// so their "release" compensators must run.
			if i%15 == 14 {
				cl.DoomAtSite(id, rentals)
			}
			res := cl.Run(ctx, o2pc.TxnSpec{
				ID:             id,
				Protocol:       o2pc.O2PC,
				Marking:        o2pc.MarkP1,
				MarkingRetries: 25,
				Subtxns: []o2pc.SubtxnSpec{
					reserve(airline, "seats"),
					reserve(hotel, "rooms"),
					reserve(rentals, "cars"),
				},
			})
			mu.Lock()
			switch {
			case res.Committed():
				booked++
			case res.Outcome == o2pc.AbortedExec:
				soldOut++
			default:
				refused++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := cl.Quiesce(qctx); err != nil {
		log.Fatalf("quiesce: %v", err)
	}

	seats := cl.Site(0).ReadInt64("seats")
	rooms := cl.Site(1).ReadInt64("rooms")
	cars := cl.Site(2).ReadInt64("cars")
	fmt.Printf("trips: %d booked, %d sold-out, %d refused (compensated)\n", booked, soldOut, refused)
	fmt.Printf("inventory left: %d seats, %d rooms, %d cars\n", seats, rooms, cars)

	// Semantic atomicity: every booked trip consumed exactly one of each;
	// every aborted trip consumed nothing.
	okSeats := seats == int64(flightSeats-booked)
	okRooms := rooms == int64(hotelRooms-booked)
	okCars := cars == int64(rentalCars-booked)
	fmt.Printf("inventory consistent: seats=%v rooms=%v cars=%v\n", okSeats, okRooms, okCars)
	if !okSeats || !okRooms || !okCars {
		log.Fatal("INVENTORY LEAK — semantic atomicity violated")
	}

	fmt.Println("note: \"refused\" trips include P1 marking aborts — transactions that")
	fmt.Println("      would have mixed sites with inconsistent undone-marks; rejecting")
	fmt.Println("      them is how P1 keeps the global serialization graph free of")
	fmt.Println("      regular cycles under concurrent compensation.")
	audit := cl.Audit()
	fmt.Printf("history audit: regular cycles=%d, correct=%v\n", audit.RegularCount, audit.Correct())
	if !audit.Correct() {
		log.Fatal("CORRECTNESS CRITERION VIOLATED")
	}
}
