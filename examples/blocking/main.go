// Command blocking demonstrates the paper's core motivation side by side:
// a coordinator that crashes between the vote round and the decision
// leaves 2PC participants blocked — holding exclusive locks for the whole
// outage — while O2PC participants have already locally committed and
// released everything.
//
// The demo runs the same doomed-coordinator scenario under both protocols
// and measures how long a conflicting transaction at a participant site
// has to wait.
//
// Run with:
//
//	go run ./examples/blocking
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"o2pc"
)

const outage = 300 * time.Millisecond

func main() {
	fmt.Printf("coordinator outage: %v\n\n", outage)
	for _, protocol := range []o2pc.Protocol{o2pc.TwoPC, o2pc.O2PC} {
		wait := measure(protocol)
		fmt.Printf("%-5v conflicting transaction waited %8v\n", protocol, wait.Round(time.Millisecond))
	}
	fmt.Println("\n2PC's wait tracks the outage duration (unbounded in general);")
	fmt.Println("O2PC's wait is just local execution time.")
}

func measure(protocol o2pc.Protocol) time.Duration {
	cl := o2pc.NewCluster(o2pc.ClusterConfig{Sites: 2, LockTimeout: 10 * time.Second})
	cl.SeedInt64("x", 0)
	ctx := context.Background()

	// The coordinator will crash after collecting the votes for Tcrash.
	cl.Coordinator(0).SetCrashInjector(func(id string, phase o2pc.CrashPhase) bool {
		return id == "Tcrash" && phase == o2pc.CrashAfterVotes
	})
	res := cl.Run(ctx, o2pc.TxnSpec{
		ID:       "Tcrash",
		Protocol: protocol,
		Subtxns: []o2pc.SubtxnSpec{
			{Site: "s0", Ops: []o2pc.Operation{o2pc.Add("x", 1)}, Comp: o2pc.CompSemantic},
			{Site: "s1", Ops: []o2pc.Operation{o2pc.Add("x", 1)}, Comp: o2pc.CompSemantic},
		},
	})
	if res.Outcome != o2pc.AbortedCoordinator {
		log.Fatalf("unexpected outcome %v", res.Outcome)
	}
	cl.Network().SetDown("c0", true) // the failure is visible to everyone

	// A conflicting local transaction at s0 measures the blocking window.
	start := time.Now()
	done := make(chan time.Duration, 1)
	go func() {
		err := cl.RunLocal(ctx, 0, func(t *o2pc.Txn) error {
			_, err := t.ReadInt64(ctx, "x")
			return err
		})
		if err != nil {
			log.Fatalf("probe: %v", err)
		}
		done <- time.Since(start)
	}()

	// Let the outage last, then recover the coordinator (presumed abort).
	time.Sleep(outage)
	if err := cl.RecoverCoordinator(ctx, 0); err != nil {
		log.Fatalf("recover: %v", err)
	}
	wait := <-done

	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := cl.Quiesce(qctx); err != nil {
		log.Fatalf("quiesce: %v", err)
	}
	return wait
}
