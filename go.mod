module o2pc

go 1.23
